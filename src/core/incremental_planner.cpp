#include "core/incremental_planner.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <iterator>
#include <queue>
#include <stdexcept>
#include <utility>

#include "util/simd.hpp"
#include "util/task_pool.hpp"

namespace tagwatch::core {

namespace {

/// One lazy-greedy heap entry over the persistent edge table: the row's
/// gain when last evaluated, the round that evaluation happened in, and
/// the row's emission key.  The key packs (min-anchor rank, pointer, d) —
/// the order candidates_for() first emits each coverage — so equal-gain
/// pops break ties exactly like the oracle's candidate-index tie-break.
struct HeapEntry {
  double gain = 0.0;
  std::uint64_t key = 0;
  std::uint32_t edge = 0;
  std::uint32_t round = 0;
};

/// Max-heap order: highest gain first; equal gains pop the lowest
/// emission key first — the pinned greedy tie-break.
struct HeapLess {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    if (a.gain != b.gain) return a.gain < b.gain;
    return a.key > b.key;
  }
};

}  // namespace

IncrementalPlanner::IncrementalPlanner(InventoryCostModel cost_model,
                                       double churn_threshold,
                                       util::TaskPool* pool)
    : cost_model_(cost_model), churn_threshold_(churn_threshold), pool_(pool) {
  if (churn_threshold < 0.0) {
    throw std::invalid_argument(
        "IncrementalPlanner: churn_threshold must be >= 0");
  }
}

// --------------------------------------------------------- slot registry

void IncrementalPlanner::ensure_capacity(std::size_t min_slots) {
  if (capacity_ >= min_slots) return;
  std::size_t new_cap = capacity_ == 0 ? 64 : capacity_ * 2;
  while (new_cap < min_slots) new_cap *= 2;
  const std::size_t new_words = new_cap / 64;

  epcs_.resize(new_cap, util::Epc(epc_bits_));
  packed_.resize(new_cap * packed_words_, 0);
  is_target_.resize(new_cap, 0);

  std::vector<std::uint64_t> one(epc_bits_ * new_words, 0);
  std::vector<std::uint64_t> zero(epc_bits_ * new_words, 0);
  std::vector<std::uint64_t> present(new_words, 0);
  for (std::size_t b = 0; b < epc_bits_; ++b) {
    std::copy_n(cols_one_.data() + b * cap_words_, cap_words_,
                one.data() + b * new_words);
    std::copy_n(cols_zero_.data() + b * cap_words_, cap_words_,
                zero.data() + b * new_words);
  }
  std::copy_n(present_.data(), cap_words_, present.data());
  cols_one_ = std::move(one);
  cols_zero_ = std::move(zero);
  present_ = std::move(present);

  // Hand out the new slots lowest-index-first for determinism.
  for (std::size_t s = new_cap; s > capacity_; --s) {
    free_slots_.push_back(static_cast<std::uint32_t>(s - 1));
  }
  capacity_ = new_cap;
  cap_words_ = new_words;
}

std::uint32_t IncrementalPlanner::alloc_slot(const util::Epc& epc) {
  ensure_capacity(n_present_ + 1);
  const std::uint32_t slot = free_slots_.back();
  free_slots_.pop_back();
  epcs_[slot] = epc;
  std::uint64_t* row = packed_.data() + slot * packed_words_;
  std::fill_n(row, packed_words_, 0);
  const std::uint64_t slot_mask = std::uint64_t{1} << (slot % 64);
  const std::size_t slot_word = slot / 64;
  for (std::size_t b = 0; b < epc_bits_; ++b) {
    const bool bit = epc.bits().bit(b);
    if (bit) row[b / 64] |= std::uint64_t{1} << (63 - b % 64);
    (bit ? cols_one_ : cols_zero_)[b * cap_words_ + slot_word] |= slot_mask;
  }
  present_[slot_word] |= slot_mask;
  ++n_present_;
  return slot;
}

void IncrementalPlanner::release_slot(std::uint32_t slot) {
  const std::uint64_t clear_mask = ~(std::uint64_t{1} << (slot % 64));
  const std::size_t slot_word = slot / 64;
  for (std::size_t b = 0; b < epc_bits_; ++b) {
    cols_one_[b * cap_words_ + slot_word] &= clear_mask;
    cols_zero_[b * cap_words_ + slot_word] &= clear_mask;
  }
  present_[slot_word] &= clear_mask;
  is_target_[slot] = 0;
  free_slots_.push_back(slot);
  --n_present_;
}

// --------------------------------------------------------- edge registry

std::uint32_t IncrementalPlanner::alloc_edge(Arena& a) {
  std::uint32_t e;
  if (!a.free_edges.empty()) {
    e = a.free_edges.back();
    a.free_edges.pop_back();
    a.edges[e] = Edge{};
  } else {
    e = static_cast<std::uint32_t>(a.edges.size());
    a.edges.emplace_back();
  }
  a.edges[e].alive = true;
  ++a.live_edges;
  return e;
}

std::uint32_t IncrementalPlanner::alloc_node(Arena& a) {
  if (!a.free_nodes.empty()) {
    const std::uint32_t n = a.free_nodes.back();
    a.free_nodes.pop_back();
    a.nodes[n] = Node{};
    return n;
  }
  a.nodes.emplace_back();
  return static_cast<std::uint32_t>(a.nodes.size() - 1);
}

void IncrementalPlanner::free_edge(std::uint32_t e) {
  arena_.edges[e].alive = false;
  arena_.edges[e].targets.clear();
  arena_.free_edges.push_back(e);
  --arena_.live_edges;
}

void IncrementalPlanner::free_node(std::uint32_t n) {
  arena_.free_nodes.push_back(n);
}

std::size_t IncrementalPlanner::edge_bot(const Edge& e) const noexcept {
  return e.child_node != kNone ? arena_.nodes[e.child_node].depth
                               : epc_bits_ - e.p;
}

void IncrementalPlanner::refresh_min_slot(Edge& e) const {
  std::uint32_t best = e.targets.front();
  for (std::size_t i = 1; i < e.targets.size(); ++i) {
    if (epcs_[e.targets[i]] < epcs_[best]) best = e.targets[i];
  }
  e.min_slot = best;
}

void IncrementalPlanner::free_below(std::uint32_t e) {
  const std::uint32_t child = arena_.edges[e].child_node;
  if (child == kNone) return;
  for (const int side : {0, 1}) {
    const std::uint32_t se = arena_.nodes[child].side[side].edge;
    if (se != kNone) {
      free_below(se);
      free_edge(se);
    }
  }
  free_node(child);
  arena_.edges[e].child_node = kNone;
}

// ------------------------------------------------------------- coverage

void IncrementalPlanner::materialize(Scratch& s, std::size_t p,
                                     std::size_t d,
                                     std::uint32_t anchor) const {
  s.col_ptrs.clear();
  for (std::size_t k = 0; k < d; ++k) {
    s.col_ptrs.push_back(column(p + k, epc_bit(anchor, p + k)));
  }
  s.words.resize(cap_words_);
  s.count = util::simd::fused_and_columns(s.words.data(), present_.data(),
                                          s.col_ptrs.data(), d, cap_words_);
  s.active.resize(cap_words_);
  s.active.resize(util::simd::nonzero_indices_u32(s.words.data(), cap_words_,
                                                  s.active.data()));
}

void IncrementalPlanner::scratch_and_column(Scratch& s,
                                            const std::uint64_t* col) const {
  std::size_t out = 0;
  std::size_t count = 0;
  for (const std::uint32_t w : s.active) {
    const std::uint64_t v = s.words[w] & col[w];
    s.words[w] = v;
    if (v != 0) {
      s.active[out++] = w;
      count += static_cast<std::size_t>(std::popcount(v));
    }
  }
  s.active.resize(out);
  s.count = count;
}

// ----------------------------------------------------------- trie deltas

void IncrementalPlanner::split_edge(std::size_t p, std::uint32_t e,
                                    std::size_t j, std::uint32_t slot) {
  const std::uint32_t anchor = arena_.edges[e].min_slot;
  const bool anchor_bit = epc_bit(anchor, p + j);
  (void)slot;
  assert(epc_bit(slot, p + j) != anchor_bit);

  const std::uint32_t m = alloc_node(arena_);
  const std::uint32_t bottom = alloc_edge(arena_);
  Edge& top = arena_.edges[e];
  Edge& bot = arena_.edges[bottom];
  bot.p = top.p;
  bot.d = static_cast<std::uint16_t>(j + 1);
  bot.parent_node = m;
  bot.parent_side = anchor_bit ? 1 : 0;
  bot.child_node = top.child_node;
  bot.count = top.count;
  bot.min_slot = top.min_slot;
  bot.targets = top.targets;  // Same targets below both halves.
  if (bot.child_node != kNone) arena_.nodes[bot.child_node].parent_edge = bottom;

  Node& node = arena_.nodes[m];
  node.depth = static_cast<std::uint16_t>(j);
  node.parent_edge = e;
  node.parent_side = top.parent_side;
  node.side[anchor_bit ? 1 : 0] = Side{bottom, 0};
  node.side[anchor_bit ? 0 : 1] = Side{kNone, 1};  // The arrival alone.
  top.child_node = m;
}

void IncrementalPlanner::arrive_in_trie(std::size_t p, std::uint32_t slot) {
  Trie& trie = tries_[p];
  std::uint32_t e;
  if (trie.root_edge != kNone) {
    const std::uint32_t anchor = arena_.edges[trie.root_edge].min_slot;
    // A divergence at bit p itself lands in the untracked region.
    if (epc_bit(slot, p) != epc_bit(anchor, p)) return;
    e = trie.root_edge;
  } else if (trie.root_node != kNone) {
    const int b = epc_bit(slot, p) ? 1 : 0;
    e = arena_.nodes[trie.root_node].side[b].edge;  // Root sides: always edges.
  } else {
    return;  // No targets in this trie: nothing is tracked.
  }

  for (;;) {
    const std::size_t bot = edge_bot(arena_.edges[e]);
    const std::uint32_t anchor = arena_.edges[e].min_slot;
    // Scan the span below the top for the arrival's divergence point.
    std::size_t j = arena_.edges[e].d;
    while (j < bot && epc_bit(slot, p + j) == epc_bit(anchor, p + j)) ++j;
    if (j < bot) {
      split_edge(p, e, j, slot);
      ++arena_.edges[e].count;  // Only the top half gains the arrival.
      return;
    }
    ++arena_.edges[e].count;
    const std::uint32_t child = arena_.edges[e].child_node;
    if (child == kNone) return;  // Joined the terminal suffix class.
    const int b = epc_bit(slot, p + arena_.nodes[child].depth) ? 1 : 0;
    Side& side = arena_.nodes[child].side[b];
    if (side.edge == kNone) {
      ++side.blob;
      return;
    }
    e = side.edge;
  }
}

void IncrementalPlanner::depart_in_trie(std::size_t p, std::uint32_t slot) {
  Trie& trie = tries_[p];
  std::uint32_t e;
  if (trie.root_edge != kNone) {
    const std::uint32_t anchor = arena_.edges[trie.root_edge].min_slot;
    if (epc_bit(slot, p) != epc_bit(anchor, p)) return;  // Untracked.
    e = trie.root_edge;
  } else if (trie.root_node != kNone) {
    const int b = epc_bit(slot, p) ? 1 : 0;
    e = arena_.nodes[trie.root_node].side[b].edge;
  } else {
    return;
  }

  for (;;) {
    --arena_.edges[e].count;
    const std::uint32_t child = arena_.edges[e].child_node;
    if (child == kNone) return;  // Left the terminal suffix class.
    const int b = epc_bit(slot, p + arena_.nodes[child].depth) ? 1 : 0;
    Side& side = arena_.nodes[child].side[b];
    if (side.edge != kNone) {
      e = side.edge;
      continue;
    }
    if (--side.blob > 0) return;
    // The blob emptied: the branch is gone.  Merge the parent edge with
    // the surviving side's edge; the parent keeps the row identity and
    // its count already matches (both now cover the same subtree).
    const std::uint32_t other = arena_.nodes[child].side[1 - b].edge;
    assert(other != kNone);  // That side holds the targets below.
    Edge& top = arena_.edges[e];
    top.child_node = arena_.edges[other].child_node;
    if (top.child_node != kNone) arena_.nodes[top.child_node].parent_edge = e;
    assert(top.count == arena_.edges[other].count);
    free_edge(other);
    free_node(child);
    return;
  }
}

void IncrementalPlanner::expand_target_path(Arena& a, Scratch& s,
                                            std::size_t p, std::uint32_t node,
                                            int side, std::uint32_t slot) {
  const std::size_t lp = epc_bits_ - p;
  const std::size_t start_d =
      node == kNone ? 1 : static_cast<std::size_t>(a.nodes[node].depth) + 1;
  materialize(s, p, start_d, slot);
  assert(node == kNone || s.count == a.nodes[node].side[side].blob);

  std::uint32_t cur = alloc_edge(a);
  {
    Edge& e = a.edges[cur];
    e.p = static_cast<std::uint16_t>(p);
    e.d = static_cast<std::uint16_t>(start_d);
    e.parent_node = node;
    e.parent_side = static_cast<std::uint8_t>(side);
    e.count = static_cast<std::uint32_t>(s.count);
    e.min_slot = slot;
    e.targets.push_back(slot);
  }
  if (node == kNone) {
    tries_[p].root_edge = cur;
  } else {
    a.nodes[node].side[side] = Side{cur, 0};
  }

  for (std::size_t k = start_d; k < lp; ++k) {
    const std::size_t before = s.count;
    const bool bit = epc_bit(slot, p + k);
    scratch_and_column(s, column(p + k, bit));
    if (s.count == before) continue;
    // The scene diverges at bit p+k: branch here, the far side a blob.
    const std::uint32_t m = alloc_node(a);
    const std::uint32_t next = alloc_edge(a);
    Node& branch = a.nodes[m];
    branch.depth = static_cast<std::uint16_t>(k);
    branch.parent_edge = cur;
    branch.parent_side = a.edges[cur].parent_side;
    branch.side[bit ? 1 : 0] = Side{next, 0};
    branch.side[bit ? 0 : 1] =
        Side{kNone, static_cast<std::uint32_t>(before - s.count)};
    a.edges[cur].child_node = m;
    Edge& e = a.edges[next];
    e.p = static_cast<std::uint16_t>(p);
    e.d = static_cast<std::uint16_t>(k + 1);
    e.parent_node = m;
    e.parent_side = bit ? 1 : 0;
    e.count = static_cast<std::uint32_t>(s.count);
    e.min_slot = slot;
    e.targets.push_back(slot);
    cur = next;
  }
}

void IncrementalPlanner::add_target_in_trie(Arena& a, Scratch& s,
                                            std::size_t p,
                                            std::uint32_t slot) {
  Trie& trie = tries_[p];
  std::uint32_t e;
  if (trie.root_edge == kNone && trie.root_node == kNone) {
    expand_target_path(a, s, p, kNone, 0, slot);
    return;
  }
  if (trie.root_edge != kNone) {
    const std::uint32_t root = trie.root_edge;
    const std::uint32_t anchor = a.edges[root].min_slot;
    const bool root_bit = epc_bit(anchor, p);
    if (epc_bit(slot, p) != root_bit) {
      // The new target lives in the untracked region: promote the root
      // to a depth-0 branch node and expand the target's side under it.
      const std::uint32_t n0 = alloc_node(a);
      a.nodes[n0].depth = 0;
      a.nodes[n0].parent_edge = kNone;
      a.nodes[n0].side[root_bit ? 1 : 0] = Side{root, 0};
      a.edges[root].parent_node = n0;
      a.edges[root].parent_side = root_bit ? 1 : 0;
      trie.root_edge = kNone;
      trie.root_node = n0;
      expand_target_path(a, s, p, n0, root_bit ? 0 : 1, slot);
      return;
    }
    e = root;
  } else {
    const int b = epc_bit(slot, p) ? 1 : 0;
    e = a.nodes[trie.root_node].side[b].edge;
  }

  for (;;) {
    Edge& edge = a.edges[e];
    edge.targets.push_back(slot);
    if (epcs_[slot] < epcs_[edge.min_slot]) edge.min_slot = slot;
    const std::uint32_t child = edge.child_node;
    if (child == kNone) return;  // Shares the terminal suffix class.
    const int b = epc_bit(slot, p + a.nodes[child].depth) ? 1 : 0;
    const Side& side = a.nodes[child].side[b];
    if (side.edge != kNone) {
      e = side.edge;
      continue;
    }
    expand_target_path(a, s, p, child, b, slot);
    return;
  }
}

void IncrementalPlanner::remove_target_in_trie(std::size_t p,
                                               std::uint32_t slot) {
  Trie& trie = tries_[p];
  std::uint32_t e;
  if (trie.root_edge != kNone) {
    e = trie.root_edge;  // A target is never untracked.
  } else {
    const int b = epc_bit(slot, p) ? 1 : 0;
    e = arena_.nodes[trie.root_node].side[b].edge;
  }

  // Walk down removing the target; targets below are nested, so the first
  // edge whose list empties tops the target's now-private path.
  std::uint32_t e_top = kNone;
  for (;;) {
    Edge& edge = arena_.edges[e];
    auto& ts = edge.targets;
    const auto it = std::find(ts.begin(), ts.end(), slot);
    assert(it != ts.end());
    *it = ts.back();
    ts.pop_back();
    if (ts.empty()) {
      e_top = e;
      break;
    }
    if (edge.min_slot == slot) refresh_min_slot(edge);
    const std::uint32_t child = edge.child_node;
    if (child == kNone) return;  // Other targets share the suffix class.
    const int b = epc_bit(slot, p + arena_.nodes[child].depth) ? 1 : 0;
    e = arena_.nodes[child].side[b].edge;  // A target's side is always an edge.
  }

  // Collapse the private path below (and including) e_top into a blob.
  free_below(e_top);
  const std::uint32_t parent = arena_.edges[e_top].parent_node;
  if (parent == kNone) {
    free_edge(e_top);  // Last target of the trie: back to one big blob.
    trie.root_edge = kNone;
    return;
  }
  Node& m = arena_.nodes[parent];
  const int side = arena_.edges[e_top].parent_side;
  if (m.depth == 0) {
    // Depth-0 branch with one side now targetless: the survivor becomes
    // the root edge again and the freed side returns to untracked.
    const std::uint32_t other = m.side[1 - side].edge;
    assert(other != kNone);
    arena_.edges[other].parent_node = kNone;
    arena_.edges[other].parent_side = 0;
    trie.root_node = kNone;
    trie.root_edge = other;
    free_edge(e_top);
    free_node(parent);
    return;
  }
  m.side[side] = Side{kNone, arena_.edges[e_top].count};
  free_edge(e_top);
}

void IncrementalPlanner::splice_arena(Arena&& a, std::size_t p_begin,
                                      std::size_t p_end) {
  // Rebuild-time arenas only ever allocate (the add path never frees), so
  // a task arena is a dense prefix-free block: appending it after the
  // current arena and shifting every index by the offsets reproduces the
  // exact layout the serial p-major build would have produced.
  assert(a.free_edges.empty() && a.free_nodes.empty());
  const std::uint32_t edge_off =
      static_cast<std::uint32_t>(arena_.edges.size());
  const std::uint32_t node_off =
      static_cast<std::uint32_t>(arena_.nodes.size());
  for (Edge& e : a.edges) {
    if (e.parent_node != kNone) e.parent_node += node_off;
    if (e.child_node != kNone) e.child_node += node_off;
  }
  for (Node& n : a.nodes) {
    if (n.parent_edge != kNone) n.parent_edge += edge_off;
    for (const int side : {0, 1}) {
      if (n.side[side].edge != kNone) n.side[side].edge += edge_off;
    }
  }
  arena_.edges.insert(arena_.edges.end(),
                      std::make_move_iterator(a.edges.begin()),
                      std::make_move_iterator(a.edges.end()));
  arena_.nodes.insert(arena_.nodes.end(), a.nodes.begin(), a.nodes.end());
  arena_.live_edges += a.live_edges;
  for (std::size_t p = p_begin; p < p_end; ++p) {
    if (tries_[p].root_edge != kNone) tries_[p].root_edge += edge_off;
    if (tries_[p].root_node != kNone) tries_[p].root_node += node_off;
  }
}

void IncrementalPlanner::tag_arrived(std::uint32_t slot) {
  for (std::size_t p = 0; p < epc_bits_; ++p) arrive_in_trie(p, slot);
}

void IncrementalPlanner::tag_departed(std::uint32_t slot) {
  for (std::size_t p = 0; p < epc_bits_; ++p) depart_in_trie(p, slot);
}

void IncrementalPlanner::target_added(std::uint32_t slot) {
  is_target_[slot] = 1;
  target_slots_.push_back(slot);
  for (std::size_t p = 0; p < epc_bits_; ++p) {
    add_target_in_trie(arena_, scratch_, p, slot);
  }
}

void IncrementalPlanner::target_removed(std::uint32_t slot) {
  is_target_[slot] = 0;
  const auto it =
      std::find(target_slots_.begin(), target_slots_.end(), slot);
  assert(it != target_slots_.end());
  *it = target_slots_.back();
  target_slots_.pop_back();
  for (std::size_t p = 0; p < epc_bits_; ++p) remove_target_in_trie(p, slot);
}

// ------------------------------------------------------------- planning

double IncrementalPlanner::cost_of(std::size_t n) {
  if (cost_memo_.size() <= n) cost_memo_.resize(n + 1, -1.0);
  double& c = cost_memo_[n];
  if (c < 0.0) c = cost_model_.cost_seconds(n);
  return c;
}

Schedule IncrementalPlanner::naive_schedule() const {
  Schedule plan;
  plan.used_naive_fallback = true;
  plan.covered_union = util::IndicatorBitmap(n_present_);
  for (std::size_t i = 0; i < sorted_slots_.size(); ++i) {
    const std::uint32_t slot = sorted_slots_[i];
    if (!is_target_[slot]) continue;
    ScheduledBitmask sel;
    sel.bitmask.pointer = 0;
    sel.bitmask.mask = epcs_[slot].bits();
    sel.covered_total = 1;
    sel.covered_targets = 1;
    plan.selections.push_back(std::move(sel));
    plan.covered_union.set(i);
    plan.estimated_cost_s += cost_model_.cost_seconds(1);
  }
  return plan;
}

Schedule IncrementalPlanner::run_greedy() {
  // Slot → EPC-sorted rank, the scene ordering of the oracle's bitmaps.
  rank_.assign(capacity_, 0);
  for (std::size_t i = 0; i < sorted_slots_.size(); ++i) {
    rank_[sorted_slots_[i]] = static_cast<std::uint32_t>(i);
  }

  remaining_.assign(capacity_, 0);
  std::size_t uncovered = target_slots_.size();
  for (const std::uint32_t t : target_slots_) remaining_[t] = 1;

  // Seed every live row with its full-target-set gain, fresh for round 1
  // (every row covers at least one target by construction).
  std::vector<HeapEntry> seed;
  seed.reserve(arena_.live_edges);
  for (std::uint32_t e = 0; e < arena_.edges.size(); ++e) {
    const Edge& edge = arena_.edges[e];
    if (!edge.alive) continue;
    const double gain =
        static_cast<double>(edge.targets.size()) / cost_of(edge.count);
    const std::uint64_t key =
        (static_cast<std::uint64_t>(rank_[edge.min_slot]) << 16) |
        (static_cast<std::uint64_t>(edge.p) << 8) |
        static_cast<std::uint64_t>(edge.d);
    seed.push_back({gain, key, e, 1});
  }
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapLess> heap(
      HeapLess{}, std::move(seed));

  Schedule plan;
  plan.covered_union = util::IndicatorBitmap(n_present_);
  std::uint32_t round = 1;
  while (uncovered > 0) {
    std::uint32_t chosen = kNone;
    while (chosen == kNone) {
      if (heap.empty()) {
        throw std::logic_error("IncrementalPlanner: uncoverable target");
      }
      const HeapEntry top = heap.top();
      heap.pop();
      if (top.round == round) {
        chosen = top.edge;
        break;
      }
      std::size_t covered = 0;
      for (const std::uint32_t t : arena_.edges[top.edge].targets) {
        covered += remaining_[t];
      }
      if (covered == 0) continue;
      heap.push({static_cast<double>(covered) /
                     cost_of(arena_.edges[top.edge].count),
                 top.key, top.edge, round});
    }

    const Edge& edge = arena_.edges[chosen];
    ScheduledBitmask sel;
    sel.bitmask.pointer = static_cast<std::uint32_t>(edge.p);
    sel.bitmask.mask = epcs_[edge.min_slot].bits().substring(edge.p, edge.d);
    sel.covered_total = edge.count;
    std::size_t newly = 0;
    for (const std::uint32_t t : edge.targets) {
      if (remaining_[t]) {
        remaining_[t] = 0;
        ++newly;
      }
    }
    sel.covered_targets = newly;
    uncovered -= newly;
    plan.selections.push_back(std::move(sel));
    plan.estimated_cost_s += cost_model_.cost_seconds(edge.count);

    materialize(scratch_, edge.p, edge.d, edge.min_slot);
    for (const std::uint32_t w : scratch_.active) {
      std::uint64_t bits = scratch_.words[w];
      while (bits != 0) {
        const int b = std::countr_zero(bits);
        bits &= bits - 1;
        plan.covered_union.set(rank_[static_cast<std::size_t>(w) * 64 +
                                     static_cast<std::size_t>(b)]);
      }
    }
    ++round;
  }

  // Worst-case guard: if the "optimal" selection costs more than reading
  // each target individually, take the naive plan (§5.2).
  Schedule naive = naive_schedule();
  if (naive.estimated_cost_s < plan.estimated_cost_s) {
    return naive;
  }
  return plan;
}

void IncrementalPlanner::rebuild(const std::vector<util::Epc>& scene,
                                 const std::vector<std::uint8_t>& is_target) {
  epc_bits_ = scene.front().size();
  packed_words_ = (epc_bits_ + 63) / 64;
  capacity_ = 0;
  cap_words_ = 0;
  n_present_ = 0;
  epcs_.clear();
  packed_.clear();
  cols_one_.clear();
  cols_zero_.clear();
  present_.clear();
  free_slots_.clear();
  sorted_slots_.clear();
  is_target_.clear();
  target_slots_.clear();
  tries_.assign(epc_bits_, Trie{});
  arena_.edges.clear();
  arena_.nodes.clear();
  arena_.free_edges.clear();
  arena_.free_nodes.clear();
  arena_.live_edges = 0;

  ensure_capacity(scene.size());
  sorted_slots_.reserve(scene.size());
  for (const util::Epc& epc : scene) {
    sorted_slots_.push_back(alloc_slot(epc));
  }
  // Register every target first, then build the tries pointer-major: the
  // per-trie call sequence (ascending scene order per pointer) is the same
  // as the target-major order, and the add path reads only the slot
  // registry, so the resulting tries are identical — but pointer-major
  // makes each trie's construction independent, which is what the
  // parallel path shards.
  for (std::size_t i = 0; i < scene.size(); ++i) {
    if (!is_target[i]) continue;
    const std::uint32_t slot = sorted_slots_[i];
    is_target_[slot] = 1;
    target_slots_.push_back(slot);
  }
  const std::size_t threads = pool_ != nullptr ? pool_->thread_count() : 1;
  if (threads <= 1 || target_slots_.empty() || epc_bits_ < 2 * threads) {
    for (std::size_t p = 0; p < epc_bits_; ++p) {
      for (const std::uint32_t slot : target_slots_) {
        add_target_in_trie(arena_, scratch_, p, slot);
      }
    }
  } else {
    // Contiguous pointer ranges, one task-local arena each, spliced back
    // in task order: byte-identical to the serial pointer-major build
    // (see splice_arena).  Tasks share nothing mutable — each writes only
    // its own arena/scratch and its own tries_[p] range.
    const std::size_t chunks = std::min(threads, epc_bits_);
    std::vector<Arena> arenas(chunks);
    std::vector<Scratch> scratches(chunks);
    pool_->run(chunks, [&](std::size_t k) {
      const std::size_t p0 = k * epc_bits_ / chunks;
      const std::size_t p1 = (k + 1) * epc_bits_ / chunks;
      for (std::size_t p = p0; p < p1; ++p) {
        for (const std::uint32_t slot : target_slots_) {
          add_target_in_trie(arenas[k], scratches[k], p, slot);
        }
      }
    });
    for (std::size_t k = 0; k < chunks; ++k) {
      splice_arena(std::move(arenas[k]), k * epc_bits_ / chunks,
                   (k + 1) * epc_bits_ / chunks);
    }
  }
  built_ = true;
}

Schedule IncrementalPlanner::plan_cycle(
    const std::vector<util::Epc>& scene,
    const std::vector<util::Epc>& targets) {
  if (scene.empty()) {
    throw std::invalid_argument("IncrementalPlanner::plan_cycle: empty scene");
  }
  const std::size_t bits = scene.front().size();
  for (std::size_t i = 0; i < scene.size(); ++i) {
    if (scene[i].size() != bits) {
      throw std::invalid_argument(
          "IncrementalPlanner::plan_cycle: mixed EPC lengths");
    }
    if (i > 0 && !(scene[i - 1] < scene[i])) {
      throw std::invalid_argument(
          "IncrementalPlanner::plan_cycle: scene not sorted/unique");
    }
  }
  for (std::size_t i = 1; i < targets.size(); ++i) {
    if (!(targets[i - 1] < targets[i])) {
      throw std::invalid_argument(
          "IncrementalPlanner::plan_cycle: targets not sorted/unique");
    }
  }

  // Which scene entries are targets (unknown target EPCs are ignored,
  // mirroring BitmaskIndex::bitmap_of).
  std::vector<std::uint8_t> scene_is_target(scene.size(), 0);
  std::size_t effective_targets = 0;
  {
    std::size_t j = 0;
    for (std::size_t i = 0; i < scene.size() && j < targets.size();) {
      if (scene[i] < targets[j]) {
        ++i;
      } else if (targets[j] < scene[i]) {
        ++j;
      } else {
        scene_is_target[i] = 1;
        ++effective_targets;
        ++i;
        ++j;
      }
    }
  }
  if (effective_targets == 0) {
    throw std::invalid_argument("IncrementalPlanner::plan_cycle: no targets");
  }

  ++stats_.cycles;
  bool need_rebuild = !built_ || bits != epc_bits_;
  stats_.last_arrivals = 0;
  stats_.last_departures = 0;
  stats_.last_target_adds = 0;
  stats_.last_target_removes = 0;
  stats_.last_churn = need_rebuild ? 1.0 : 0.0;

  std::vector<std::uint32_t> departures;
  std::vector<std::uint32_t> flip_removes;
  std::vector<std::uint32_t> flip_adds;
  std::vector<std::size_t> arrivals;  // Indices into `scene`.
  std::vector<std::uint32_t> new_sorted(scene.size(), kNone);
  if (!need_rebuild) {
    std::size_t i = 0;  // Over sorted_slots_ (previous scene, EPC order).
    std::size_t j = 0;  // Over the new scene.
    while (i < sorted_slots_.size() || j < scene.size()) {
      if (i == sorted_slots_.size()) {
        arrivals.push_back(j++);
      } else if (j == scene.size()) {
        departures.push_back(sorted_slots_[i++]);
      } else {
        const std::uint32_t slot = sorted_slots_[i];
        if (epcs_[slot] < scene[j]) {
          departures.push_back(slot);
          ++i;
        } else if (scene[j] < epcs_[slot]) {
          arrivals.push_back(j++);
        } else {
          new_sorted[j] = slot;
          if (scene_is_target[j] && !is_target_[slot]) {
            flip_adds.push_back(slot);
          } else if (!scene_is_target[j] && is_target_[slot]) {
            flip_removes.push_back(slot);
          }
          ++i;
          ++j;
        }
      }
    }
    const std::size_t events = arrivals.size() + departures.size() +
                               flip_adds.size() + flip_removes.size();
    stats_.last_arrivals = arrivals.size();
    stats_.last_departures = departures.size();
    stats_.last_target_adds = flip_adds.size();
    stats_.last_target_removes = flip_removes.size();
    stats_.last_churn =
        static_cast<double>(events) / static_cast<double>(scene.size());
    if (stats_.last_churn > churn_threshold_) need_rebuild = true;
  }

  if (need_rebuild) {
    ++stats_.full_rebuilds;
    stats_.last_was_rebuild = true;
    rebuild(scene, scene_is_target);
  } else {
    ++stats_.incremental_cycles;
    stats_.last_was_rebuild = false;
    for (const std::uint32_t slot : flip_removes) target_removed(slot);
    for (const std::uint32_t slot : departures) {
      if (is_target_[slot]) target_removed(slot);
      tag_departed(slot);
      release_slot(slot);
    }
    for (const std::size_t j : arrivals) {
      const std::uint32_t slot = alloc_slot(scene[j]);
      new_sorted[j] = slot;
      tag_arrived(slot);
    }
    sorted_slots_ = std::move(new_sorted);
    for (const std::size_t j : arrivals) {
      if (scene_is_target[j]) target_added(sorted_slots_[j]);
    }
    for (const std::uint32_t slot : flip_adds) target_added(slot);
  }

  stats_.live_rows = arena_.live_edges;
  return run_greedy();
}

}  // namespace tagwatch::core
