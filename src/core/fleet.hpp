// FleetController: N rate-adaptive readers over one scene.
//
// Real deployments tile a warehouse with readers whose antenna fields
// overlap at the zone seams.  Running one TagwatchController per reader is
// not enough: the same tag answers two readers within milliseconds (double
// delivery to the application), movers drift from one zone into the next
// (somebody must notice the handoff), and — the part Gen2 was designed
// for — the readers can coordinate *through the tags' session flags*
// instead of re-reading each other's population.
//
// FleetController owns one TagwatchController per reader and runs their
// cycles in a fixed time-division order on the shared clock.  Each
// controller keeps its private pipeline (assessor training, history); a
// tap sink copies its readings out, the fleet deduplicates them across
// readers, detects zone handoffs, and dispatches what survives to the
// fleet-level ReadingPipeline with per-reader source attribution.  Every
// cycle is journaled (llrp::FleetJournal) so record→replay runs can be
// compared by digest.
//
// Session policies (how readers share Gen2 flag state; arXiv 0904.2441
// studies the reliability side of this):
//   kIndependent — every reader re-arms its session before each round: the
//     classic single-reader discipline, readers invisible to each other.
//   kShared — all readers inventory one session with re-arming off: a tag
//     ACKed by any reader stays B for everyone until the flag decays, so
//     the fleet reads the population once per decay window.
//   kPerReader — reader k inventories session k mod 4 with re-arming off:
//     up to four *independent* sessions over the same tags, the k-session
//     redundancy scheme whose missed-read probability falls as p^k.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/tagwatch.hpp"
#include "llrp/fleet_journal.hpp"
#include "sim/world.hpp"

namespace tagwatch::core {

/// How the fleet assigns Gen2 sessions and targets to its readers.
enum class SessionPolicy {
  kIndependent,  ///< Per-round re-arm; readers don't share flag state.
  kShared,       ///< One session, no re-arm: read-once-per-decay-window.
  kPerReader,    ///< Session k%4 per reader, no re-arm: k-session redundancy.
};

const char* to_string(SessionPolicy policy);
SessionPolicy session_policy_from_string(std::string_view name);

/// How the fleet re-covers a Down reader's orphaned zone.
enum class TakeoverPolicy {
  kNone,            ///< Nobody expands; the zone stays dark until recovery.
  kStaticNeighbor,  ///< Nearest survivors widen by a fixed static_expand_m.
  kAdaptive,        ///< Survivors widen exactly far enough to reach the
                    ///< orphaned zone (budget-capped) and pin the re-cover
                    ///< queue as extra Phase II targets.
};

const char* to_string(TakeoverPolicy policy);
TakeoverPolicy takeover_policy_from_string(std::string_view name);

/// Accounting of the bounded orphaned-EPC re-cover queue.
struct RecoverStats {
  std::uint64_t enqueued = 0;   ///< Orphans admitted to the queue.
  std::uint64_t dropped = 0;    ///< Orphans rejected: queue at capacity.
  std::uint64_t recovered = 0;  ///< Orphans delivered again and retired.
  std::size_t pending = 0;      ///< Currently queued.
};

/// One reader in the fleet: its transport and the zone it covers.  The
/// zone is bookkeeping for attribution/handoff; RF-level coverage lives in
/// the backend (gen2::ReaderConfig::coverage for the simulator).
struct FleetReaderSpec {
  llrp::ReaderClient* client = nullptr;  ///< Non-owning; must outlive fleet.
  sim::Zone zone;
};

/// Fleet configuration.
struct FleetConfig {
  /// Template for every per-reader controller.  The fleet overrides
  /// session/target/re-arm per its policy and stamps source_id = reader
  /// index; everything else (assessor, scheduler, resilience) applies
  /// to each reader as given.
  TagwatchConfig controller;
  SessionPolicy policy = SessionPolicy::kIndependent;
  /// The session kShared inventories (and the base the journal records).
  gen2::Session shared_session = gen2::Session::kS2;
  /// Two sightings of one EPC by *different* readers within this window
  /// count as one reading (the second is suppressed as a cross-reader
  /// duplicate).  Same-reader repeats are never deduplicated — repeated
  /// reading is the product, not an artifact.
  util::SimDuration dedup_window = util::msec(500);
  /// How orphaned zones are re-covered when a reader goes Down.
  TakeoverPolicy takeover = TakeoverPolicy::kAdaptive;
  /// Failure-detection thresholds, probe cadence, takeover budgets.
  FleetResilienceConfig resilience;
};

/// One reader's slice of a fleet cycle.
struct FleetReaderCycle {
  std::size_t reader = 0;
  std::string zone;
  CycleReport report;          ///< The underlying controller's report.
  std::size_t delivered = 0;   ///< Readings dispatched after dedup.
  std::size_t duplicates = 0;  ///< Readings suppressed as cross-reader dups.
  ReaderState state = ReaderState::kHealthy;  ///< State after this cycle.
  bool skipped = false;      ///< Down and not probed: the reader did not run.
  bool probe = false;        ///< This run was a Down reader's probe cycle.
  bool over_budget = false;  ///< Cycle exceeded the fleet watchdog budget.
  /// Cumulative per-reader controller health — surfaced at fleet level so
  /// callers never have to reach into controller(k) (skipped cycles carry
  /// the last snapshot; CycleReport::health is default there).
  HealthMetrics health;
};

/// What happened in one fleet cycle (all readers, in TDM order).
struct FleetCycleReport {
  std::size_t cycle_index = 0;
  std::vector<FleetReaderCycle> readers;
  std::size_t readings_total = 0;    ///< Before dedup.
  std::size_t delivered_total = 0;   ///< After dedup.
  std::size_t duplicates_total = 0;  ///< Suppressed cross-reader dups.
  std::vector<llrp::FleetHandoffRecord> handoffs;
  /// Fault-tolerance events of this cycle (also journaled as D/T/R).
  std::vector<llrp::FleetDownRecord> downs;
  std::vector<llrp::FleetTakeoverRecord> takeovers;
  std::vector<llrp::FleetRecoverRecord> recoveries;
  /// Re-cover queue accounting at cycle end (cumulative counters).
  RecoverStats recover;

  /// Fraction of this cycle's readings suppressed as cross-reader
  /// duplicates — the headline overlap-coordination metric (0 when the
  /// cycle produced no readings).
  double cross_reader_dup_ratio() const {
    return readings_total == 0
               ? 0.0
               : static_cast<double>(duplicates_total) /
                     static_cast<double>(readings_total);
  }
};

/// Tracks which reader last owned each tag, for handoff detection.  Backed
/// by a dense per-tag-index vector synced against World::structure_epoch()
/// (exactly like the gen2 flag mirror) when a world is available; falls
/// back to an EPC-keyed map otherwise (replay has no world).  Both paths
/// produce identical handoff events.
class ZoneLedger {
 public:
  static constexpr std::size_t kUnowned = static_cast<std::size_t>(-1);

  /// `world` may be nullptr (EPC-map fallback) and is non-owning.
  explicit ZoneLedger(const sim::World* world) : world_(world) {}

  /// Records that `reader` just read `epc`; returns the previous owner
  /// (kUnowned on first sighting).
  std::size_t assign(const util::Epc& epc, std::size_t reader);

  /// Every EPC currently owned by `reader` (present or departed), sorted —
  /// the orphan set a takeover must re-cover when that reader dies.
  std::vector<util::Epc> owned_by(std::size_t reader) const;

 private:
  void sync();

  const sim::World* world_ = nullptr;
  // Dense path (world-backed).
  std::vector<std::size_t> owner_;
  std::vector<util::Epc> epcs_;
  std::unordered_map<util::Epc, std::size_t> departed_;
  std::uint64_t epoch_ = 0;
  // Fallback path (no world).
  std::unordered_map<util::Epc, std::size_t> by_epc_;
};

/// Per-reader availability state machine: aggregates each run cycle's
/// outcome (blackout? errored? over budget?) into the Healthy → Suspect →
/// Down → Probation → Healthy lifecycle.  Pure bookkeeping over counters —
/// no clocks, no entropy — so record and replay runs walk identical state
/// sequences.
///
/// Detection: a *failed* cycle (errored executes and zero readings, or a
/// watchdog overrun) bumps a consecutive-failure counter; suspect_after
/// of them mark the reader Suspect, down_after mark it Down.  A sliding
/// error-rate window catches flaky-but-alive readers (errored cycles that
/// still produce readings): a full window at or above the threshold marks
/// Suspect without ever blacking out.  Down readers are skipped except for
/// one probe cycle every probe_period fleet cycles; a clean probe starts
/// Probation, probation_cycles clean cycles restore Healthy.
class FleetHealth {
 public:
  /// What a single observe() did to the reader's state.
  enum class Transition {
    kNone,
    kWentSuspect,
    kWentDown,
    kRecovered,  ///< Probation served: back to Healthy.
  };

  FleetHealth(std::size_t readers, FleetResilienceConfig config);

  /// Whether the reader should run this fleet cycle (false: Down and not
  /// yet due for a probe — the caller must record the skip).
  bool should_run(std::size_t reader) const;

  /// Records a cycle the reader did not run (Down, skipped).
  void observe_skip(std::size_t reader);

  /// Feeds one run cycle's outcome and advances the state machine.
  /// `failed`: blackout or watchdog overrun; `errored`: any execute error.
  Transition observe(std::size_t reader, bool failed, bool errored);

  ReaderState state(std::size_t reader) const {
    return entries_.at(reader).state;
  }
  std::size_t consecutive_failures(std::size_t reader) const {
    return entries_.at(reader).consecutive_failures;
  }
  /// Fleet cycles the reader has spent not Healthy since it went Down.
  std::size_t down_cycles(std::size_t reader) const {
    return entries_.at(reader).down_cycles;
  }
  std::size_t down_count() const;  ///< Readers currently Down/Probation.

 private:
  struct Entry {
    ReaderState state = ReaderState::kHealthy;
    std::size_t consecutive_failures = 0;
    std::size_t healthy_streak = 0;  ///< Clean probes while in Probation.
    std::size_t skip_count = 0;      ///< Cycles skipped since last probe.
    std::size_t down_cycles = 0;     ///< Cycles spent not Healthy.
    // Error-rate ring over the last error_window run cycles.
    std::vector<char> window;
    std::size_t window_pos = 0;
    std::size_t window_filled = 0;
    std::size_t window_errors = 0;
  };

  /// True when the entry's error window is full and at/above threshold.
  bool rate_high(const Entry& e) const;
  void push_window(Entry& e, bool errored);

  FleetResilienceConfig config_;
  std::vector<Entry> entries_;
};

/// N coordinated rate-adaptive readers over one scene.
class FleetController {
 public:
  /// `readers` must be non-empty with non-null clients.  `world` is
  /// optional (non-owning): when given, handoff tracking uses the dense
  /// structure_epoch-synced ledger; replay transports pass nullptr.
  FleetController(FleetConfig config, std::vector<FleetReaderSpec> readers,
                  const sim::World* world = nullptr);

  /// Runs one cycle on every reader, in fixed TDM order, and reports.
  FleetCycleReport run_cycle();
  std::vector<FleetCycleReport> run_cycles(std::size_t n);

  /// The fleet-level delivery pipeline (deduped readings, per-reader
  /// source_id attribution).  Applications hang their sinks here.
  ReadingPipeline& pipeline() noexcept { return pipeline_; }

  /// The per-reader controller (diagnostics/tests).
  TagwatchController& controller(std::size_t reader);
  std::size_t reader_count() const noexcept { return readers_.size(); }

  /// The fleet activity journal, appended every cycle.
  const llrp::FleetJournal& journal() const noexcept { return journal_; }

  const FleetConfig& config() const noexcept { return config_; }

  /// The Gen2 session the fleet's policy assigns to `reader`.
  gen2::Session reader_session(std::size_t reader) const;

  /// The fleet health state machine (per-reader availability states).
  const FleetHealth& health() const noexcept { return health_; }

  /// Re-cover queue accounting (cumulative).
  RecoverStats recover_stats() const;

  /// The zone currently covered by `reader` — original, or expanded while
  /// it holds a takeover grant.
  const sim::Zone& reader_zone(std::size_t reader) const {
    return readers_.at(reader).spec.zone;
  }

 private:
  class TapSink;

  struct ReaderSlot {
    FleetReaderSpec spec;
    sim::Zone original_zone;  ///< spec.zone as given (pre-takeover).
    std::unique_ptr<TagwatchController> controller;
    std::shared_ptr<TapSink> tap;
  };

  struct LastSeen {
    std::size_t reader = 0;
    util::SimTime at{0};
  };

  /// One active zone expansion: `to` covers for the Down reader `from`.
  struct TakeoverGrant {
    std::size_t from = 0;
    std::size_t to = 0;
    double radius_m = 0.0;  ///< The survivor's granted coverage radius.
  };

  /// Declares `reader` Down: journals orphans into the re-cover queue and
  /// expands survivor zones per the takeover policy.
  void on_reader_down(std::size_t reader, FleetCycleReport& fleet);
  /// Restores zones granted for `reader` and journals the recovery.
  void on_reader_recovered(std::size_t reader, FleetCycleReport& fleet);
  /// Re-applies `reader`'s coverage from its original zone plus any
  /// takeover grants it still holds (max radius wins).
  void refresh_coverage(std::size_t reader);
  /// Pushes the current re-cover queue into every adaptive survivor's
  /// extra-target list (scene-gated Phase II pinning).
  void refresh_extra_targets();
  /// Survivors eligible to take over for `down`, nearest-first (ties by
  /// index), at most two.
  std::vector<std::size_t> takeover_neighbors(std::size_t down) const;

  FleetConfig config_;
  std::vector<ReaderSlot> readers_;
  ReadingPipeline pipeline_;
  llrp::FleetJournal journal_;
  ZoneLedger ledger_;
  std::unordered_map<util::Epc, LastSeen> last_seen_;
  std::size_t cycle_counter_ = 0;
  FleetHealth health_;
  std::vector<TakeoverGrant> grants_;
  /// Bounded FIFO of orphaned EPCs awaiting a post-takeover sighting,
  /// with a membership set for O(1) retirement on delivery.
  std::deque<util::Epc> recover_queue_;
  std::unordered_set<util::Epc> recover_set_;
  RecoverStats recover_stats_;
};

}  // namespace tagwatch::core
