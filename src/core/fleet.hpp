// FleetController: N rate-adaptive readers over one scene.
//
// Real deployments tile a warehouse with readers whose antenna fields
// overlap at the zone seams.  Running one TagwatchController per reader is
// not enough: the same tag answers two readers within milliseconds (double
// delivery to the application), movers drift from one zone into the next
// (somebody must notice the handoff), and — the part Gen2 was designed
// for — the readers can coordinate *through the tags' session flags*
// instead of re-reading each other's population.
//
// FleetController owns one TagwatchController per reader and runs their
// cycles in a fixed time-division order on the shared clock.  Each
// controller keeps its private pipeline (assessor training, history); a
// tap sink copies its readings out, the fleet deduplicates them across
// readers, detects zone handoffs, and dispatches what survives to the
// fleet-level ReadingPipeline with per-reader source attribution.  Every
// cycle is journaled (llrp::FleetJournal) so record→replay runs can be
// compared by digest.
//
// Session policies (how readers share Gen2 flag state; arXiv 0904.2441
// studies the reliability side of this):
//   kIndependent — every reader re-arms its session before each round: the
//     classic single-reader discipline, readers invisible to each other.
//   kShared — all readers inventory one session with re-arming off: a tag
//     ACKed by any reader stays B for everyone until the flag decays, so
//     the fleet reads the population once per decay window.
//   kPerReader — reader k inventories session k mod 4 with re-arming off:
//     up to four *independent* sessions over the same tags, the k-session
//     redundancy scheme whose missed-read probability falls as p^k.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/tagwatch.hpp"
#include "llrp/fleet_journal.hpp"
#include "sim/world.hpp"

namespace tagwatch::core {

/// How the fleet assigns Gen2 sessions and targets to its readers.
enum class SessionPolicy {
  kIndependent,  ///< Per-round re-arm; readers don't share flag state.
  kShared,       ///< One session, no re-arm: read-once-per-decay-window.
  kPerReader,    ///< Session k%4 per reader, no re-arm: k-session redundancy.
};

const char* to_string(SessionPolicy policy);
SessionPolicy session_policy_from_string(std::string_view name);

/// One reader in the fleet: its transport and the zone it covers.  The
/// zone is bookkeeping for attribution/handoff; RF-level coverage lives in
/// the backend (gen2::ReaderConfig::coverage for the simulator).
struct FleetReaderSpec {
  llrp::ReaderClient* client = nullptr;  ///< Non-owning; must outlive fleet.
  sim::Zone zone;
};

/// Fleet configuration.
struct FleetConfig {
  /// Template for every per-reader controller.  The fleet overrides
  /// session/target/re-arm per its policy and stamps source_id = reader
  /// index; everything else (assessor, scheduler, resilience) applies
  /// to each reader as given.
  TagwatchConfig controller;
  SessionPolicy policy = SessionPolicy::kIndependent;
  /// The session kShared inventories (and the base the journal records).
  gen2::Session shared_session = gen2::Session::kS2;
  /// Two sightings of one EPC by *different* readers within this window
  /// count as one reading (the second is suppressed as a cross-reader
  /// duplicate).  Same-reader repeats are never deduplicated — repeated
  /// reading is the product, not an artifact.
  util::SimDuration dedup_window = util::msec(500);
};

/// One reader's slice of a fleet cycle.
struct FleetReaderCycle {
  std::size_t reader = 0;
  std::string zone;
  CycleReport report;          ///< The underlying controller's report.
  std::size_t delivered = 0;   ///< Readings dispatched after dedup.
  std::size_t duplicates = 0;  ///< Readings suppressed as cross-reader dups.
};

/// What happened in one fleet cycle (all readers, in TDM order).
struct FleetCycleReport {
  std::size_t cycle_index = 0;
  std::vector<FleetReaderCycle> readers;
  std::size_t readings_total = 0;    ///< Before dedup.
  std::size_t delivered_total = 0;   ///< After dedup.
  std::size_t duplicates_total = 0;  ///< Suppressed cross-reader dups.
  std::vector<llrp::FleetHandoffRecord> handoffs;

  /// Fraction of this cycle's readings suppressed as cross-reader
  /// duplicates — the headline overlap-coordination metric (0 when the
  /// cycle produced no readings).
  double cross_reader_dup_ratio() const {
    return readings_total == 0
               ? 0.0
               : static_cast<double>(duplicates_total) /
                     static_cast<double>(readings_total);
  }
};

/// Tracks which reader last owned each tag, for handoff detection.  Backed
/// by a dense per-tag-index vector synced against World::structure_epoch()
/// (exactly like the gen2 flag mirror) when a world is available; falls
/// back to an EPC-keyed map otherwise (replay has no world).  Both paths
/// produce identical handoff events.
class ZoneLedger {
 public:
  static constexpr std::size_t kUnowned = static_cast<std::size_t>(-1);

  /// `world` may be nullptr (EPC-map fallback) and is non-owning.
  explicit ZoneLedger(const sim::World* world) : world_(world) {}

  /// Records that `reader` just read `epc`; returns the previous owner
  /// (kUnowned on first sighting).
  std::size_t assign(const util::Epc& epc, std::size_t reader);

 private:
  void sync();

  const sim::World* world_ = nullptr;
  // Dense path (world-backed).
  std::vector<std::size_t> owner_;
  std::vector<util::Epc> epcs_;
  std::unordered_map<util::Epc, std::size_t> departed_;
  std::uint64_t epoch_ = 0;
  // Fallback path (no world).
  std::unordered_map<util::Epc, std::size_t> by_epc_;
};

/// N coordinated rate-adaptive readers over one scene.
class FleetController {
 public:
  /// `readers` must be non-empty with non-null clients.  `world` is
  /// optional (non-owning): when given, handoff tracking uses the dense
  /// structure_epoch-synced ledger; replay transports pass nullptr.
  FleetController(FleetConfig config, std::vector<FleetReaderSpec> readers,
                  const sim::World* world = nullptr);

  /// Runs one cycle on every reader, in fixed TDM order, and reports.
  FleetCycleReport run_cycle();
  std::vector<FleetCycleReport> run_cycles(std::size_t n);

  /// The fleet-level delivery pipeline (deduped readings, per-reader
  /// source_id attribution).  Applications hang their sinks here.
  ReadingPipeline& pipeline() noexcept { return pipeline_; }

  /// The per-reader controller (diagnostics/tests).
  TagwatchController& controller(std::size_t reader);
  std::size_t reader_count() const noexcept { return readers_.size(); }

  /// The fleet activity journal, appended every cycle.
  const llrp::FleetJournal& journal() const noexcept { return journal_; }

  const FleetConfig& config() const noexcept { return config_; }

  /// The Gen2 session the fleet's policy assigns to `reader`.
  gen2::Session reader_session(std::size_t reader) const;

 private:
  class TapSink;

  struct ReaderSlot {
    FleetReaderSpec spec;
    std::unique_ptr<TagwatchController> controller;
    std::shared_ptr<TapSink> tap;
  };

  struct LastSeen {
    std::size_t reader = 0;
    util::SimTime at{0};
  };

  FleetConfig config_;
  std::vector<ReaderSlot> readers_;
  ReadingPipeline pipeline_;
  llrp::FleetJournal journal_;
  ZoneLedger ledger_;
  std::unordered_map<util::Epc, LastSeen> last_seen_;
  std::size_t cycle_counter_ = 0;
};

}  // namespace tagwatch::core
