#include "core/tagwatch.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "core/metrics.hpp"
#include "util/simd.hpp"

namespace tagwatch::core {

namespace {

/// Initial Q sized to the expected selected population: f = 2^Q ≈ n.
std::uint8_t q_for_population(std::size_t n) {
  std::uint8_t q = 0;
  while ((std::size_t{1} << q) < n && q < 15) ++q;
  return q;
}

}  // namespace

TagwatchController::TagwatchController(TagwatchConfig config,
                                       llrp::ReaderClient& client)
    : config_(std::move(config)), client_(&client),
      assessor_(config_.assessor, config_.assessor_threads),
      jitter_rng_(config_.resilience.retry.jitter_seed) {
  // Built-in consumers (Fig. 5): model training first, then the history
  // database; application and telemetry sinks append behind them.
  pipeline_.add_sink(std::make_shared<ParallelAssessorSink>(assessor_));
  pipeline_.add_sink(std::make_shared<HistorySink>(history_));
  if (config_.wall_clock != nullptr) {
    pipeline_.set_wall_clock(*config_.wall_clock);
  }
  // Pin the process-wide kernel table: best detected ISA, or the portable
  // scalar kernels under force_scalar_simd.  Either way the kernels are
  // bit-identical, so this never changes a plan or a journal digest.
  util::simd::set_active_isa(config_.force_scalar_simd
                                 ? util::simd::Isa::kScalar
                                 : util::simd::detected_isa());
  if (config_.planner.threads > 1) {
    planning_pool_ = std::make_unique<util::TaskPool>(config_.planner.threads);
  }
}

void TagwatchController::set_read_listener(gen2::ReadCallback listener) {
  if (!listener) {
    pipeline_.remove_sink("app");
    return;
  }
  pipeline_.set_sink(
      std::make_shared<CallbackSink>("app", std::move(listener)));
}

void TagwatchController::deliver_batch(
    const std::vector<rf::TagReading>& readings, CycleReport& report,
    ReadPhase phase) {
  if (readings.empty()) return;
  if (phase == ReadPhase::kPhase2) {
    report.phase2_readings += readings.size();
    for (const rf::TagReading& r : readings) ++report.phase2_counts[r.epc];
  } else {
    report.phase1_readings += readings.size();
  }
  pipeline_.dispatch_batch(
      readings, ReadingContext{report.cycle_index, phase, config_.source_id});
}

std::shared_ptr<PipelineMetrics> attach_metrics(
    TagwatchController& controller) {
  auto metrics = std::make_shared<PipelineMetrics>();
  metrics->observe(controller.pipeline());
  controller.pipeline().set_sink(metrics);
  return metrics;
}

llrp::ROSpec TagwatchController::make_read_all_rospec(
    util::SimDuration duration) const {
  llrp::ROSpec spec;
  llrp::AISpec ai;
  if (!quarantined_.empty()) ai.antenna_indexes = healthy_antennas();
  ai.session = config_.session;
  ai.target = config_.query_target;
  ai.rearm_session = config_.rearm_session;
  ai.initial_q = config_.phase1_initial_q;
  ai.stop = llrp::AiSpecStopTrigger::after_duration(duration);
  spec.ai_specs.push_back(std::move(ai));
  return spec;
}

std::vector<std::size_t> TagwatchController::healthy_antennas() const {
  const std::size_t n =
      std::max<std::size_t>(client_->capabilities().antenna_count, 1);
  std::vector<std::size_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!quarantined_.contains(i)) out.push_back(i);
  }
  return out;
}

bool TagwatchController::strip_quarantined(llrp::ROSpec& spec) const {
  bool any_drivable = false;
  for (llrp::AISpec& ai : spec.ai_specs) {
    if (ai.antenna_indexes.empty()) ai.antenna_indexes = healthy_antennas();
    std::erase_if(ai.antenna_indexes, [this](std::size_t a) {
      return quarantined_.contains(a);
    });
    if (!ai.antenna_indexes.empty()) any_drivable = true;
  }
  return any_drivable;
}

llrp::ExecutionResult TagwatchController::execute_resilient(
    llrp::ROSpec spec, util::SimTime watchdog_deadline, CycleReport& report,
    bool& gave_up) {
  gave_up = false;
  const RetryPolicy& retry = config_.resilience.retry;
  const std::size_t max_attempts =
      std::max<std::size_t>(retry.max_attempts, 1);
  std::vector<rf::TagReading> salvage;
  util::SimDuration backoff = retry.initial_backoff;

  for (std::size_t attempt = 0;; ++attempt) {
    llrp::ExecutionResult result = client_->execute(spec);
    if (result.ok()) {
      if (!salvage.empty()) {
        // Salvaged readings happened on earlier (failed) attempts.
        result.report.readings.insert(result.report.readings.begin(),
                                      salvage.begin(), salvage.end());
      }
      return result;
    }

    const llrp::ReaderError err = *result.error;
    health_.count_fault(err.kind);
    ++report.execute_failures;

    if (config_.resilience.salvage_partial_reports &&
        !result.report.readings.empty()) {
      ++health_.partial_salvages;
      health_.salvaged_readings += result.report.readings.size();
      report.salvaged_readings += result.report.readings.size();
      salvage.insert(salvage.end(), result.report.readings.begin(),
                     result.report.readings.end());
    }

    if (err.kind == llrp::ReaderErrorKind::kPartialReport) {
      // The inventory itself ran to completion — only report delivery was
      // lossy.  Keep the salvage instead of re-spending the air time.
      result.report.readings = std::move(salvage);
      return result;
    }

    if (err.kind == llrp::ReaderErrorKind::kAntennaLost) {
      if (quarantined_.insert(err.antenna).second) {
        health_.quarantined_antennas = quarantined_.size();
      }
      const bool drivable = strip_quarantined(spec);
      if (drivable && attempt + 1 < max_attempts &&
          client_->now() < watchdog_deadline) {
        // Re-issue immediately on the surviving ports: the failure is
        // instantaneous and deterministic, so backing off buys nothing.
        ++health_.retries;
        ++report.retries;
        continue;
      }
      gave_up = true;
      ++health_.giveups;
      result.report.readings = std::move(salvage);
      return result;
    }

    // Timeout / Disconnected / ProtocolError: transient — back off and
    // retry while the attempt and watchdog budgets allow.
    if (attempt + 1 >= max_attempts || client_->now() >= watchdog_deadline) {
      gave_up = true;
      ++health_.giveups;
      result.report.readings = std::move(salvage);
      return result;
    }
    util::SimDuration wait = backoff;
    if (retry.jitter_fraction > 0.0) {
      const double factor =
          1.0 + retry.jitter_fraction * jitter_rng_.uniform(-1.0, 1.0);
      wait = util::from_seconds(util::to_seconds(backoff) * factor);
    }
    client_->advance(wait);
    health_.backoff_total += wait;
    report.backoff_time += wait;
    ++health_.retries;
    ++report.retries;
    backoff = std::min(
        util::from_seconds(util::to_seconds(backoff) *
                           retry.backoff_multiplier),
        retry.max_backoff);
  }
}

void TagwatchController::run_phase2_selected(const Schedule& schedule,
                                             util::SimTime t_end,
                                             util::SimTime watchdog_deadline,
                                             CycleReport& report,
                                             bool& phase2_failed) {
  std::size_t pass = 0;
  while (client_->now() < t_end && client_->now() < watchdog_deadline) {
    const util::SimTime pass_start = client_->now();
    const std::vector<std::size_t> antennas = healthy_antennas();
    if (antennas.empty()) {
      phase2_failed = true;
      return;
    }
    const std::size_t antenna = antennas[pass % antennas.size()];
    for (const auto& sel : schedule.selections) {
      if (client_->now() >= t_end || client_->now() >= watchdog_deadline) {
        break;
      }
      llrp::ROSpec spec;
      llrp::AISpec ai;
      ai.antenna_indexes = {antenna};
      ai.session = config_.session;
      ai.initial_q =
          q_for_population(std::max<std::size_t>(sel.covered_total, 1));
      ai.stop = llrp::AiSpecStopTrigger::after_rounds(1);
      llrp::C1G2Filter filter{gen2::MemBank::kEpc, sel.bitmask.pointer,
                              sel.bitmask.mask};
      filter.truncate = config_.use_truncation;
      ai.filters.push_back(std::move(filter));
      spec.ai_specs.push_back(std::move(ai));
      bool gave_up = false;
      const llrp::ExecutionResult exec =
          execute_resilient(std::move(spec), watchdog_deadline, report,
                            gave_up);
      if (gave_up) phase2_failed = true;
      report.slot_totals += exec.report.slot_totals;
      if (!exec.report.readings.empty() && !first_read_) {
        first_read_ = exec.report.readings.front().timestamp;
      }
      deliver_batch(exec.report.readings, report, ReadPhase::kPhase2);
    }
    // A fully failing pass that charges no time (e.g. retries disabled)
    // would loop forever on a dead reader: bail once the clock stalls.
    if (client_->now() == pass_start) {
      phase2_failed = true;
      return;
    }
    ++pass;
  }
}

void TagwatchController::update_degradation(bool phase2_failed) {
  if (phase2_failed) {
    healthy_streak_ = 0;
    ++consecutive_phase2_failures_;
    if (!degraded_ && consecutive_phase2_failures_ >=
                          config_.resilience.degrade_after_failures) {
      degraded_ = true;
      ++health_.degraded_entries;
    }
    return;
  }
  consecutive_phase2_failures_ = 0;
  if (degraded_) {
    ++healthy_streak_;
    if (healthy_streak_ >= config_.resilience.restore_after_healthy) {
      degraded_ = false;
      healthy_streak_ = 0;
      ++health_.degraded_exits;
    }
  }
}

CycleReport TagwatchController::run_cycle() {
  CycleReport report;
  report.cycle_index = cycle_counter_++;
  report.degraded_mode = degraded_;
  if (degraded_) ++health_.degraded_cycles;

  const util::SimTime cycle_start = client_->now();
  const bool watchdog_enabled =
      config_.resilience.cycle_watchdog_budget > util::SimDuration::zero();
  const util::SimTime watchdog_deadline =
      watchdog_enabled ? cycle_start + config_.resilience.cycle_watchdog_budget
                       : util::SimTime::max();
  bool phase2_failed = false;

  // ----------------------------------------------------------- Phase I
  assessor_.begin_window();
  llrp::ROSpec phase1;
  {
    const std::size_t n_antennas =
        std::max<std::size_t>(healthy_antennas().size(), 1);
    llrp::AISpec ai;
    if (!quarantined_.empty()) ai.antenna_indexes = healthy_antennas();
    ai.session = config_.session;
    ai.target = config_.query_target;
    ai.rearm_session = config_.rearm_session || rearm_once_;
    rearm_once_ = false;
    ai.initial_q = config_.phase1_initial_q;
    ai.stop = llrp::AiSpecStopTrigger::after_rounds(
        n_antennas * config_.phase1_rounds_per_antenna);
    phase1.ai_specs.push_back(std::move(ai));
  }
  // A Phase I giveup is survivable: an empty scene forces the read-all
  // path below, which re-inventories everything anyway.
  bool phase1_gave_up = false;
  const llrp::ExecutionResult phase1_exec = execute_resilient(
      std::move(phase1), watchdog_deadline, report, phase1_gave_up);
  (void)phase1_gave_up;
  // Elapsed reader time, retries and backoff included.
  report.phase1_duration = client_->now() - cycle_start;
  report.slot_totals += phase1_exec.report.slot_totals;

  util::SimTime last_phase1_read{0};
  std::unordered_set<util::Epc> scene_set;
  for (const auto& r : phase1_exec.report.readings) {
    scene_set.insert(r.epc);
    last_phase1_read = std::max(last_phase1_read, r.timestamp);
  }
  deliver_batch(phase1_exec.report.readings, report, ReadPhase::kPhase1);
  report.scene.assign(scene_set.begin(), scene_set.end());
  std::sort(report.scene.begin(), report.scene.end());

  // ------------------------------------------- Assessment + scheduling
  util::WallClock& wall = config_.wall_clock != nullptr
                              ? *config_.wall_clock
                              : util::WallClock::system();
  const double wall_start = wall.now_seconds();

  report.mobile = assessor_.mobile_tags(client_->now());
  std::unordered_set<util::Epc> target_set(report.mobile.begin(),
                                           report.mobile.end());
  for (const auto& pinned : config_.pinned_targets) {
    if (scene_set.contains(pinned)) target_set.insert(pinned);
  }
  for (const auto& extra : extra_targets_) {
    if (scene_set.contains(extra)) target_set.insert(extra);
  }
  report.targets.assign(target_set.begin(), target_set.end());
  std::sort(report.targets.begin(), report.targets.end());

  bool read_all = degraded_ || config_.mode == ScheduleMode::kReadAll ||
                  report.scene.empty() || report.targets.empty();
  if (!read_all) {
    const double fraction = static_cast<double>(report.targets.size()) /
                            static_cast<double>(report.scene.size());
    if (fraction > config_.mobile_fraction_threshold) read_all = true;
  }

  if (!read_all) {
    if (config_.planner.incremental &&
        config_.mode == ScheduleMode::kGreedyCover) {
      // Persistent cross-cycle planner: diff against the previous scene
      // and patch the candidate structure instead of rebuilding it.
      if (incremental_planner_ == nullptr) {
        incremental_planner_ = std::make_unique<IncrementalPlanner>(
            config_.cost_model, config_.planner.churn_threshold,
            planning_pool_.get());
      }
      report.schedule =
          incremental_planner_->plan_cycle(report.scene, report.targets);
      report.planner_incremental = true;
      report.planner_rebuild =
          incremental_planner_->stats().last_was_rebuild;
    } else {
      BitmaskIndex index(report.scene);
      const util::IndicatorBitmap targets = index.bitmap_of(report.targets);
      GreedyCoverScheduler scheduler(config_.cost_model,
                                     config_.greedy_evaluation);
      report.schedule = config_.mode == ScheduleMode::kNaiveEpcMasks
                            ? scheduler.naive_plan(index, targets)
                            : scheduler.plan(index, targets,
                                             planning_pool_.get());
    }
  }
  report.read_all_fallback = read_all;

  report.schedule_compute_ms = (wall.now_seconds() - wall_start) * 1e3;
  if (config_.charge_compute_time) {
    // Put the host compute time on the reader clock so the inter-phase
    // gap reflects it, as the paper's Fig. 17 measurement does.
    client_->advance(util::from_seconds(report.schedule_compute_ms / 1e3));
  }

  // ----------------------------------------------------------- Phase II
  util::SimDuration phase2_length = config_.phase2_duration;
  if (config_.phase2_policy) {
    phase2_length = std::clamp(
        config_.phase2_policy(report.targets.size(), report.scene.size()),
        util::msec(100), util::sec(60));
  }
  if (watchdog_enabled) {
    // A read-all Phase II is one long execute the watchdog cannot interrupt
    // from outside — cap its length at the remaining budget up front.
    const util::SimTime now = client_->now();
    const util::SimDuration remaining =
        now < watchdog_deadline ? watchdog_deadline - now
                                : util::SimDuration::zero();
    phase2_length = std::min(phase2_length, remaining);
  }
  const util::SimTime phase2_start = client_->now();
  const util::SimTime t_end = phase2_start + phase2_length;
  first_read_.reset();

  if (read_all) {
    bool gave_up = false;
    const llrp::ExecutionResult exec =
        execute_resilient(make_read_all_rospec(phase2_length),
                          watchdog_deadline, report, gave_up);
    if (gave_up) phase2_failed = true;
    report.slot_totals += exec.report.slot_totals;
    if (!exec.report.readings.empty() && !first_read_) {
      first_read_ = exec.report.readings.front().timestamp;
    }
    deliver_batch(exec.report.readings, report, ReadPhase::kPhase2);
  } else {
    run_phase2_selected(report.schedule, t_end, watchdog_deadline, report,
                        phase2_failed);
  }

  report.phase2_duration = client_->now() - phase2_start;

  if (watchdog_enabled && client_->now() >= watchdog_deadline) {
    report.watchdog_tripped = true;
    ++health_.watchdog_trips;
  }

  update_degradation(phase2_failed);

  // Inter-phase gap (Fig. 17): last Phase I reading → first Phase II one.
  if (first_read_ && last_phase1_read.count() > 0) {
    report.interphase_gap = *first_read_ - last_phase1_read;
  } else {
    report.interphase_gap.reset();
  }

  report.quarantined_antennas.assign(quarantined_.begin(), quarantined_.end());
  report.health = health_;

  pipeline_.end_cycle(report);
  return report;
}

std::vector<CycleReport> TagwatchController::run_cycles(std::size_t n) {
  std::vector<CycleReport> reports;
  reports.reserve(n);
  for (std::size_t i = 0; i < n; ++i) reports.push_back(run_cycle());
  return reports;
}

}  // namespace tagwatch::core
