#include "core/tagwatch.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <unordered_set>

#include "core/metrics.hpp"

namespace tagwatch::core {

namespace {

/// Initial Q sized to the expected selected population: f = 2^Q ≈ n.
std::uint8_t q_for_population(std::size_t n) {
  std::uint8_t q = 0;
  while ((std::size_t{1} << q) < n && q < 15) ++q;
  return q;
}

}  // namespace

TagwatchController::TagwatchController(TagwatchConfig config,
                                       llrp::ReaderClient& client)
    : config_(std::move(config)), client_(&client),
      assessor_(config_.assessor) {
  // Built-in consumers (Fig. 5): model training first, then the history
  // database; application and telemetry sinks append behind them.
  pipeline_.add_sink(std::make_shared<AssessorSink>(assessor_));
  pipeline_.add_sink(std::make_shared<HistorySink>(history_));
}

void TagwatchController::set_read_listener(gen2::ReadCallback listener) {
  if (!listener) {
    pipeline_.remove_sink("app");
    return;
  }
  pipeline_.set_sink(std::make_shared<CallbackSink>("app", std::move(listener)));
}

void TagwatchController::deliver(const rf::TagReading& reading,
                                 CycleReport& report, ReadPhase phase) {
  if (phase == ReadPhase::kPhase2) {
    ++report.phase2_readings;
    ++report.phase2_counts[reading.epc];
  } else {
    ++report.phase1_readings;
  }
  pipeline_.dispatch(reading, ReadingContext{report.cycle_index, phase});
}

std::shared_ptr<PipelineMetrics> attach_metrics(
    TagwatchController& controller) {
  auto metrics = std::make_shared<PipelineMetrics>();
  metrics->observe(controller.pipeline());
  controller.pipeline().set_sink(metrics);
  return metrics;
}

llrp::ROSpec TagwatchController::make_read_all_rospec(
    util::SimDuration duration) const {
  llrp::ROSpec spec;
  llrp::AISpec ai;
  ai.session = config_.session;
  ai.initial_q = config_.phase1_initial_q;
  ai.stop = llrp::AiSpecStopTrigger::after_duration(duration);
  spec.ai_specs.push_back(std::move(ai));
  return spec;
}

void TagwatchController::run_phase2_selected(const Schedule& schedule,
                                             util::SimTime t_end,
                                             CycleReport& report) {
  const std::size_t n_antennas =
      std::max<std::size_t>(client_->capabilities().antenna_count, 1);
  std::size_t pass = 0;
  while (client_->now() < t_end) {
    const std::size_t antenna = pass % n_antennas;
    for (const auto& sel : schedule.selections) {
      if (client_->now() >= t_end) break;
      llrp::ROSpec spec;
      llrp::AISpec ai;
      ai.antenna_indexes = {antenna};
      ai.session = config_.session;
      ai.initial_q = q_for_population(std::max<std::size_t>(sel.covered_total, 1));
      ai.stop = llrp::AiSpecStopTrigger::after_rounds(1);
      llrp::C1G2Filter filter{gen2::MemBank::kEpc, sel.bitmask.pointer,
                              sel.bitmask.mask};
      filter.truncate = config_.use_truncation;
      ai.filters.push_back(std::move(filter));
      spec.ai_specs.push_back(std::move(ai));
      const llrp::ExecutionReport exec = client_->execute(spec);
      report.slot_totals += exec.slot_totals;
      for (const auto& r : exec.readings) {
        if (!first_read_) first_read_ = r.timestamp;
        deliver(r, report, ReadPhase::kPhase2);
      }
    }
    ++pass;
  }
}

CycleReport TagwatchController::run_cycle() {
  CycleReport report;
  report.cycle_index = cycle_counter_++;

  // ----------------------------------------------------------- Phase I
  assessor_.begin_window();
  llrp::ROSpec phase1;
  {
    llrp::AISpec ai;
    ai.session = config_.session;
    ai.initial_q = config_.phase1_initial_q;
    ai.stop = llrp::AiSpecStopTrigger::after_rounds(
        client_->capabilities().antenna_count *
        config_.phase1_rounds_per_antenna);
    phase1.ai_specs.push_back(std::move(ai));
  }
  const llrp::ExecutionReport phase1_exec = client_->execute(phase1);
  report.phase1_duration = phase1_exec.duration;
  report.slot_totals += phase1_exec.slot_totals;

  util::SimTime last_phase1_read{0};
  std::unordered_set<util::Epc> scene_set;
  for (const auto& r : phase1_exec.readings) {
    deliver(r, report, ReadPhase::kPhase1);
    scene_set.insert(r.epc);
    last_phase1_read = std::max(last_phase1_read, r.timestamp);
  }
  report.scene.assign(scene_set.begin(), scene_set.end());
  std::sort(report.scene.begin(), report.scene.end());

  // ------------------------------------------- Assessment + scheduling
  const auto wall_start = std::chrono::steady_clock::now();

  report.mobile = assessor_.mobile_tags(client_->now());
  std::unordered_set<util::Epc> target_set(report.mobile.begin(),
                                           report.mobile.end());
  for (const auto& pinned : config_.pinned_targets) {
    if (scene_set.contains(pinned)) target_set.insert(pinned);
  }
  report.targets.assign(target_set.begin(), target_set.end());
  std::sort(report.targets.begin(), report.targets.end());

  bool read_all = config_.mode == ScheduleMode::kReadAll ||
                  report.scene.empty() || report.targets.empty();
  if (!read_all) {
    const double fraction = static_cast<double>(report.targets.size()) /
                            static_cast<double>(report.scene.size());
    if (fraction > config_.mobile_fraction_threshold) read_all = true;
  }

  if (!read_all) {
    BitmaskIndex index(report.scene);
    const util::IndicatorBitmap targets = index.bitmap_of(report.targets);
    GreedyCoverScheduler scheduler(config_.cost_model);
    report.schedule = config_.mode == ScheduleMode::kNaiveEpcMasks
                          ? scheduler.naive_plan(index, targets)
                          : scheduler.plan(index, targets);
  }
  report.read_all_fallback = read_all;

  const auto wall_end = std::chrono::steady_clock::now();
  report.schedule_compute_ms =
      std::chrono::duration<double, std::milli>(wall_end - wall_start).count();
  if (config_.charge_compute_time) {
    // Put the host compute time on the reader clock so the inter-phase
    // gap reflects it, as the paper's Fig. 17 measurement does.
    client_->advance(util::from_seconds(report.schedule_compute_ms / 1e3));
  }

  // ----------------------------------------------------------- Phase II
  util::SimDuration phase2_length = config_.phase2_duration;
  if (config_.phase2_policy) {
    phase2_length = std::clamp(
        config_.phase2_policy(report.targets.size(), report.scene.size()),
        util::msec(100), util::sec(60));
  }
  const util::SimTime phase2_start = client_->now();
  const util::SimTime t_end = phase2_start + phase2_length;
  first_read_.reset();

  if (read_all) {
    const llrp::ExecutionReport exec =
        client_->execute(make_read_all_rospec(phase2_length));
    report.slot_totals += exec.slot_totals;
    for (const auto& r : exec.readings) {
      if (!first_read_) first_read_ = r.timestamp;
      deliver(r, report, ReadPhase::kPhase2);
    }
  } else {
    run_phase2_selected(report.schedule, t_end, report);
  }

  report.phase2_duration = client_->now() - phase2_start;

  // Inter-phase gap (Fig. 17): last Phase I reading → first Phase II one.
  if (first_read_ && last_phase1_read.count() > 0) {
    report.interphase_gap = *first_read_ - last_phase1_read;
  } else {
    report.interphase_gap.reset();
  }

  pipeline_.end_cycle(report);
  return report;
}

std::vector<CycleReport> TagwatchController::run_cycles(std::size_t n) {
  std::vector<CycleReport> reports;
  reports.reserve(n);
  for (std::size_t i = 0; i < n; ++i) reports.push_back(run_cycle());
  return reports;
}

}  // namespace tagwatch::core
