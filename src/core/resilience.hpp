// Controller-side resilience against a faulty reader transport.
//
// execute() can now fail (llrp::ReaderError); this header defines how the
// controller responds: a bounded-exponential-backoff retry policy (time
// charged onto the reader clock so recorded runs replay exactly), a
// per-cycle watchdog budget, and a degradation state machine — after K
// consecutive Phase-II failures the controller falls back to the paper's
// read-all baseline cycle, returning to rate-adaptive mode after M healthy
// cycles.  Everything it does is counted in HealthMetrics.
#pragma once

#include <cstdint>

#include "llrp/reader_client.hpp"
#include "util/sim_time.hpp"

namespace tagwatch::core {

/// Bounded exponential backoff with deterministic jitter.  All waits are
/// charged to the reader clock via ReaderClient::advance(), so they are
/// journaled and replay bit-exactly.
struct RetryPolicy {
  /// Total attempts per ROSpec (1 = no retries).
  std::size_t max_attempts = 3;
  util::SimDuration initial_backoff = util::msec(20);
  double backoff_multiplier = 2.0;
  util::SimDuration max_backoff = util::msec(640);
  /// Each wait is scaled by a uniform factor in [1-j, 1+j], drawn from a
  /// seeded RNG (deterministic — replay makes identical draws).
  double jitter_fraction = 0.1;
  std::uint64_t jitter_seed = 0x0b0f;
};

/// Degradation / recovery knobs.
struct ResilienceConfig {
  RetryPolicy retry;
  /// K: consecutive cycles whose Phase II exhausted retries before the
  /// controller drops to the read-all baseline cycle.
  std::size_t degrade_after_failures = 3;
  /// M: consecutive healthy cycles in degraded mode before rate-adaptive
  /// reading resumes.
  std::size_t restore_after_healthy = 3;
  /// Per-cycle reader-clock budget: once a cycle has consumed this much
  /// time (retries and backoff included), Phase II stops scheduling more
  /// work and the cycle ends.  Zero disables the watchdog.
  util::SimDuration cycle_watchdog_budget{0};
  /// Deliver the partial readings an errored execute salvaged (they are
  /// real reads; dropping them only starves the assessor).
  bool salvage_partial_reports = true;
};

/// Fleet-level view of one reader's availability (core::FleetHealth).
enum class ReaderState {
  kHealthy,    ///< Normal TDM participation.
  kSuspect,    ///< Elevated error rate; still runs every cycle.
  kDown,       ///< Declared failed; skipped except for periodic probes.
  kProbation,  ///< A probe succeeded; earning its way back to Healthy.
};

inline const char* to_string(ReaderState state) {
  switch (state) {
    case ReaderState::kHealthy: return "healthy";
    case ReaderState::kSuspect: return "suspect";
    case ReaderState::kDown: return "down";
    case ReaderState::kProbation: return "probation";
  }
  return "unknown";
}

/// Fleet failure-detection / takeover knobs (consumed by core::FleetHealth
/// and FleetController; the per-reader retry machinery above is separate
/// and still lives in TagwatchConfig::resilience).
struct FleetResilienceConfig {
  /// Consecutive blackout cycles (errored executes and zero readings)
  /// before a Healthy reader is marked Suspect, then Down.
  std::size_t suspect_after_failures = 2;
  std::size_t down_after_failures = 3;
  /// Sliding window (in run cycles) of the error-rate detector: when the
  /// window is full and at least error_rate_threshold of it saw errored
  /// executes, the reader is marked Suspect even without blackouts.
  std::size_t error_window = 8;
  double error_rate_threshold = 0.5;
  /// While Down, the reader still runs one probe cycle out of every
  /// probe_period fleet cycles (1 = probe every cycle, never skip).
  std::size_t probe_period = 2;
  /// Clean probe cycles required to climb from Probation back to Healthy.
  std::size_t probation_cycles = 2;
  /// Radius cap for a survivor's zone during takeover, meters.  Zero means
  /// "twice the survivor's own original radius" (the power budget: a COTS
  /// reader can roughly double its footprint before regulatory limits).
  double takeover_radius_budget_m = 0.0;
  /// Fixed radius expansion used by TakeoverPolicy::kStaticNeighbor.
  double static_expand_m = 1.0;
  /// Capacity of the bounded orphaned-EPC re-cover queue; overflow is
  /// dropped and counted (RecoverStats::dropped).
  std::size_t recover_queue_capacity = 1024;
  /// Fleet watchdog: a reader cycle consuming more sim time than this
  /// counts as a failed cycle for its state machine.  Also stamped into
  /// per-reader controllers whose own cycle_watchdog_budget is unset, so
  /// a wedged reader cannot stall the whole TDM rotation.  Zero disables.
  util::SimDuration reader_cycle_budget{0};
};

/// Cumulative controller health counters, snapshotted into every
/// CycleReport and surfaced through PipelineMetrics.
struct HealthMetrics {
  // Transport faults observed, by kind.
  std::uint64_t timeouts = 0;
  std::uint64_t disconnects = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t partial_reports = 0;
  std::uint64_t antenna_losses = 0;

  std::uint64_t retries = 0;  ///< Re-issued executes (after backoff).
  std::uint64_t giveups = 0;  ///< ROSpecs abandoned after max_attempts.
  util::SimDuration backoff_total{0};  ///< Reader time spent backing off.

  std::uint64_t salvaged_readings = 0;  ///< Readings kept from failures.
  std::uint64_t partial_salvages = 0;   ///< Failed executes that yielded any.

  std::uint64_t degraded_entries = 0;  ///< Adaptive → read-all transitions.
  std::uint64_t degraded_exits = 0;    ///< Read-all → adaptive transitions.
  std::uint64_t degraded_cycles = 0;   ///< Cycles run in degraded mode.
  std::uint64_t watchdog_trips = 0;    ///< Cycles cut short by the budget.
  std::size_t quarantined_antennas = 0;

  std::uint64_t faults_total() const noexcept {
    return timeouts + disconnects + protocol_errors + partial_reports +
           antenna_losses;
  }

  void count_fault(llrp::ReaderErrorKind kind) {
    switch (kind) {
      case llrp::ReaderErrorKind::kTimeout: ++timeouts; break;
      case llrp::ReaderErrorKind::kDisconnected: ++disconnects; break;
      case llrp::ReaderErrorKind::kProtocolError: ++protocol_errors; break;
      case llrp::ReaderErrorKind::kPartialReport: ++partial_reports; break;
      case llrp::ReaderErrorKind::kAntennaLost: ++antenna_losses; break;
    }
  }
};

}  // namespace tagwatch::core
