// Self-learning immobility model (paper §4.1–4.2).
//
// Each tag's stationary appearance is modeled by a stack of up to K
// Gaussian components over its RF phase (or RSS).  A component corresponds
// to one multipath superposition state (one Fresnel-zone configuration of
// the environment, Fig. 7); the Stauffer–Grimson-style online update keeps
// the stack adapted to environmental change without offline training:
//
//   matched (stationary):  w ← (1-α)w + α
//                          μ ← (1-ρ)μ + ρθ        (shortest-arc for phase)
//                          σ ← sqrt((1-ρ)σ² + ρ(θ-μ)²)
//   unmatched components:  w ← (1-α)w
//   no match (moving):     push {μ=θ, large σ, tiny w}, evicting the
//                          lowest-priority component (r = w/σ) if full.
//
// Two standard refinements from the background-modeling literature are
// applied (documented deviations from the paper's abbreviated pseudo-code,
// which degenerates as written because a fresh σ≈2π component matches every
// subsequent value):
//   1. warm-up: a young component uses ρ = 1/(count+1) (running average) so
//      its μ/σ converge to sample statistics quickly, then switches to the
//      slow rate ρ = α·η̂;
//   2. trust: an observation is declared *stationary* only when the matched
//      component is mature — weight ≥ trust_weight AND σ ≤ trust_stddev —
//      i.e. a persistent, tight multipath state.  Immature matches still
//      update the mixture but classify as moving, which realizes the
//      paper's "initially assume all tags are in motion, then immediately
//      learn their immobility".
#pragma once

#include <cstddef>
#include <vector>

namespace tagwatch::core {

/// Distance semantics for the observed scalar.
enum class Metric {
  kCircular,  ///< mod-2π minimum distance (RF phase).
  kLinear,    ///< absolute difference (RSS in dBm).
};

/// Tuning parameters (paper §6 defaults: α=0.001, K=8, ξ=3).
struct ImmobilityConfig {
  double learning_rate = 0.001;   ///< α
  std::size_t max_components = 8; ///< K
  double match_threshold = 3.0;   ///< ξ (match if |θ-μ| < ξσ)
  /// σ for a freshly pushed component.  Also caps σ during updates: an
  /// immobility state is by definition tight, so a component absorbing
  /// far-fringe samples must not balloon into a catch-all.
  double initial_stddev = 0.35;
  double initial_weight = 1e-4;   ///< w for a freshly pushed component
  /// Floor on σ during matching so that a run of identical quantized values
  /// cannot collapse the acceptance band to zero width.
  double min_match_stddev = 0.03;
  /// Warm-up length: below this many absorbed samples a component estimates
  /// μ/σ by running average instead of the slow exponential update.
  std::size_t warmup_count = 40;
  /// Maturity requirements for a match to count as immobility evidence: the
  /// component must have absorbed at least trust_count samples, be tight
  /// (σ ≤ trust_stddev), and carry at least trust_weight.
  std::size_t trust_count = 8;
  double trust_weight = 0.002;
  double trust_stddev = 0.30;

  /// Defaults scaled for RSS (dBm) instead of phase (radians).
  static ImmobilityConfig for_rss() {
    ImmobilityConfig c;
    c.initial_stddev = 4.0;
    c.min_match_stddev = 0.4;
    c.trust_stddev = 2.5;
    return c;
  }
};

/// One Gaussian component of the mixture.
struct GaussianComponent {
  double weight = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  std::size_t count = 0;  ///< Samples absorbed (drives warm-up).

  /// Priority r = w/σ: high weight and low spread ranks first (§4.2).
  double priority() const noexcept {
    return stddev > 0.0 ? weight / stddev : weight / 1e-9;
  }
};

/// Classification of one observation.
enum class MotionVerdict {
  kStationary,  ///< Matched a trusted immobility component.
  kMoving,      ///< Matched nothing trusted: state change or new tag.
};

/// The per-(tag, antenna, channel) Gaussian-mixture immobility model.
class ImmobilityModel {
 public:
  explicit ImmobilityModel(ImmobilityConfig config = {},
                           Metric metric = Metric::kCircular);

  /// Classifies without learning.
  MotionVerdict classify(double value) const;

  /// Classifies and then applies the self-learning update (the per-reading
  /// step of Phase I).  Returns the pre-update classification.
  MotionVerdict observe(double value);

  /// Learns from `value` without using the verdict (absorbs Phase II
  /// readings into the model, §4.3 "when do we learn Gaussian models").
  void learn(double value) { (void)observe(value); }

  /// Components ordered by descending priority (diagnostics/tests).
  const std::vector<GaussianComponent>& components() const noexcept {
    return components_;
  }
  std::size_t component_count() const noexcept { return components_.size(); }
  /// True if any component is mature enough to certify immobility.
  bool has_trusted_component() const noexcept;
  const ImmobilityConfig& config() const noexcept { return config_; }
  Metric metric() const noexcept { return metric_; }

 private:
  double distance(double a, double b) const;
  double blend(double mean, double value, double rho) const;
  bool matches(const GaussianComponent& c, double value) const;
  bool trusted(const GaussianComponent& c) const noexcept;
  /// Index of the highest-priority matching component, or npos.
  std::size_t find_match(double value) const;
  void sort_by_priority();

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  ImmobilityConfig config_;
  Metric metric_;
  std::vector<GaussianComponent> components_;
};

}  // namespace tagwatch::core
