// Self-learning immobility model (paper §4.1–4.2).
//
// Each tag's stationary appearance is modeled by a stack of up to K
// Gaussian components over its RF phase (or RSS).  A component corresponds
// to one multipath superposition state (one Fresnel-zone configuration of
// the environment, Fig. 7); the Stauffer–Grimson-style online update keeps
// the stack adapted to environmental change without offline training:
//
//   matched (stationary):  w ← (1-α)w + α
//                          μ ← (1-ρ)μ + ρθ        (shortest-arc for phase)
//                          σ ← sqrt((1-ρ)σ² + ρ(θ-μ)²)
//   unmatched components:  w ← (1-α)w
//   no match (moving):     push {μ=θ, large σ, tiny w}, evicting the
//                          lowest-priority component (r = w/σ) if full.
//
// Two standard refinements from the background-modeling literature are
// applied (documented deviations from the paper's abbreviated pseudo-code,
// which degenerates as written because a fresh σ≈2π component matches every
// subsequent value):
//   1. warm-up: a young component uses ρ = 1/(count+1) (running average) so
//      its μ/σ converge to sample statistics quickly, then switches to the
//      slow rate ρ = α·η̂;
//   2. trust: an observation is declared *stationary* only when the matched
//      component is mature — weight ≥ trust_weight AND σ ≤ trust_stddev —
//      i.e. a persistent, tight multipath state.  Immature matches still
//      update the mixture but classify as moving, which realizes the
//      paper's "initially assume all tags are in motion, then immediately
//      learn their immobility".
//
// The per-observation math lives in the inline mog_* free functions below,
// shared verbatim between ImmobilityModel (the readable per-model class)
// and the pooled component banks of core::ParallelAssessor — one
// definition is what makes the parallel ingestion engine bit-identical to
// the serial path by construction.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "util/circular.hpp"
#include "util/simd.hpp"

namespace tagwatch::core {

/// Distance semantics for the observed scalar.
enum class Metric {
  kCircular,  ///< mod-2π minimum distance (RF phase).
  kLinear,    ///< absolute difference (RSS in dBm).
};

/// Tuning parameters (paper §6 defaults: α=0.001, K=8, ξ=3).
struct ImmobilityConfig {
  double learning_rate = 0.001;   ///< α
  std::size_t max_components = 8; ///< K
  double match_threshold = 3.0;   ///< ξ (match if |θ-μ| < ξσ)
  /// σ for a freshly pushed component.  Also caps σ during updates: an
  /// immobility state is by definition tight, so a component absorbing
  /// far-fringe samples must not balloon into a catch-all.
  double initial_stddev = 0.35;
  double initial_weight = 1e-4;   ///< w for a freshly pushed component
  /// Floor on σ during matching so that a run of identical quantized values
  /// cannot collapse the acceptance band to zero width.
  double min_match_stddev = 0.03;
  /// Warm-up length: below this many absorbed samples a component estimates
  /// μ/σ by running average instead of the slow exponential update.
  std::size_t warmup_count = 40;
  /// Maturity requirements for a match to count as immobility evidence: the
  /// component must have absorbed at least trust_count samples, be tight
  /// (σ ≤ trust_stddev), and carry at least trust_weight.
  std::size_t trust_count = 8;
  double trust_weight = 0.002;
  double trust_stddev = 0.30;

  /// Defaults scaled for RSS (dBm) instead of phase (radians).
  static ImmobilityConfig for_rss() {
    ImmobilityConfig c;
    c.initial_stddev = 4.0;
    c.min_match_stddev = 0.4;
    c.trust_stddev = 2.5;
    return c;
  }
};

/// One Gaussian component of the mixture.
struct GaussianComponent {
  double weight = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  std::size_t count = 0;  ///< Samples absorbed (drives warm-up).

  /// Priority r = w/σ: high weight and low spread ranks first (§4.2).
  double priority() const noexcept {
    return stddev > 0.0 ? weight / stddev : weight / 1e-9;
  }
};

/// Classification of one observation.
enum class MotionVerdict {
  kStationary,  ///< Matched a trusted immobility component.
  kMoving,      ///< Matched nothing trusted: state change or new tag.
};

// ----------------------------------------------------- shared MoG math
// The per-observation kernel over a raw component array, used by BOTH
// ImmobilityModel::observe/classify and the pooled banks of
// core::ParallelAssessor.  Both paths therefore evaluate the same
// expression trees in the same order, which is what the bit-identity
// guarantee of the parallel ingestion engine rests on — change the math
// here and every consumer moves together.

/// mog_find_match() return value when no component matches.
inline constexpr std::size_t kMogNoMatch = static_cast<std::size_t>(-1);

inline double mog_distance(Metric metric, double a, double b) {
  return metric == Metric::kCircular ? util::circular_distance(a, b)
                                     : std::abs(a - b);
}

inline double mog_blend(Metric metric, double mean, double value,
                        double rho) {
  return metric == Metric::kCircular
             ? util::circular_lerp(mean, value, rho)
             : mean + rho * (value - mean);
}

inline bool mog_matches(const ImmobilityConfig& config, Metric metric,
                        const GaussianComponent& c, double value) {
  const double band =
      config.match_threshold * std::max(c.stddev, config.min_match_stddev);
  return mog_distance(metric, value, c.mean) < band;
}

inline bool mog_trusted(const ImmobilityConfig& config,
                        const GaussianComponent& c) noexcept {
  return c.count >= config.trust_count && c.weight >= config.trust_weight &&
         c.stddev <= config.trust_stddev;
}

/// Doubles between consecutive components of a bank — the stride the
/// util::simd MoG kernels walk.  The layout assertions pin what they rely
/// on: the three double fields lead the struct, contiguously.
inline constexpr std::size_t kMogStride =
    sizeof(GaussianComponent) / sizeof(double);
static_assert(sizeof(GaussianComponent) == 4 * sizeof(double));
static_assert(offsetof(GaussianComponent, weight) == 0);
static_assert(offsetof(GaussianComponent, mean) == sizeof(double));
static_assert(offsetof(GaussianComponent, stddev) == 2 * sizeof(double));

/// Index of the highest-priority matching component in comps[0..n), or
/// kMogNoMatch.  comps is kept sorted by descending priority, so the first
/// hit is the best.  The linear metric runs through the dispatched
/// strided-match kernel (|θ-μ| is elementwise IEEE math, so scalar and
/// AVX2 agree bit for bit); the circular metric's fmod cannot be
/// vectorized exactly and always takes the scalar loop.
inline std::size_t mog_find_match(const GaussianComponent* comps,
                                  std::size_t n,
                                  const ImmobilityConfig& config,
                                  Metric metric, double value) {
  if (metric == Metric::kLinear && n > 0) {
    return util::simd::strided_match_first(
        &comps[0].mean, &comps[0].stddev, kMogStride, n, value,
        config.match_threshold, config.min_match_stddev);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (mog_matches(config, metric, comps[i], value)) return i;
  }
  return kMogNoMatch;
}

/// Stable descending-priority sort of comps[0..n).  Insertion sort: for
/// n ≤ K it is the fastest option, needs no temporary buffer (unlike
/// std::stable_sort, which allocates one per call), and being stable it
/// produces exactly the permutation std::stable_sort would.
inline void mog_sort_by_priority(GaussianComponent* comps, std::size_t n) {
  for (std::size_t i = 1; i < n; ++i) {
    const GaussianComponent key = comps[i];
    const double priority = key.priority();
    std::size_t j = i;
    while (j > 0 && comps[j - 1].priority() < priority) {
      comps[j] = comps[j - 1];
      --j;
    }
    comps[j] = key;
  }
}

/// Classifies `value` against comps[0..n) without learning.
inline MotionVerdict mog_classify(const GaussianComponent* comps,
                                  std::size_t n,
                                  const ImmobilityConfig& config,
                                  Metric metric, double value) {
  const std::size_t match = mog_find_match(comps, n, config, metric, value);
  if (match == kMogNoMatch) return MotionVerdict::kMoving;
  return mog_trusted(config, comps[match]) ? MotionVerdict::kStationary
                                           : MotionVerdict::kMoving;
}

/// Classifies and then applies the self-learning update to comps[0..n)
/// in place, growing n on a no-match push.  `comps` must have room for
/// config.max_components elements.  Returns the pre-update classification.
inline MotionVerdict mog_observe(GaussianComponent* comps, std::size_t& n,
                                 const ImmobilityConfig& config,
                                 Metric metric, double value) {
  const std::size_t match = mog_find_match(comps, n, config, metric, value);
  const double alpha = config.learning_rate;

  if (match == kMogNoMatch) {
    // Case 2: no component explains the observation — the tag (or the
    // environment) changed state.  Seed a new low-confidence component.
    const GaussianComponent fresh{config.initial_weight, value,
                                  config.initial_stddev, 1};
    if (n < config.max_components) {
      comps[n++] = fresh;
    } else {
      // Replace the lowest-priority component (comps sorted descending).
      comps[n - 1] = fresh;
    }
    mog_sort_by_priority(comps, n);
    return MotionVerdict::kMoving;
  }

  const MotionVerdict verdict = mog_trusted(config, comps[match])
                                    ? MotionVerdict::kStationary
                                    : MotionVerdict::kMoving;

  // Case 1: matched — reinforce it, decay the rest (Eqn. 11).  The
  // unmatched decay w ← (1-α)w is one IEEE multiply per component, so it
  // runs through the dispatched strided kernel (bit-identical across
  // ISAs); the matched component's compound update stays scalar, where
  // the compiler evaluates one fixed expression tree.
  util::simd::strided_weight_decay(&comps[0].weight, kMogStride, n,
                                   1.0 - alpha, match);
  {
    GaussianComponent& c = comps[match];
    c.weight = (1.0 - alpha) * c.weight + alpha;
    ++c.count;
    double rho;
    if (c.count <= config.warmup_count) {
      // Warm-up: converge to the sample statistics of absorbed values.
      rho = 1.0 / static_cast<double>(c.count + 1);
    } else {
      // Steady state: ρ = α·η̂ with a unit-peak kernel so that samples in
      // the component core adapt at rate α and fringe samples slower.
      const double sigma = std::max(c.stddev, config.min_match_stddev);
      const double z = mog_distance(metric, value, c.mean) / sigma;
      rho = alpha * std::exp(-0.5 * z * z);
    }
    c.mean = mog_blend(metric, c.mean, value, rho);
    const double residual = mog_distance(metric, value, c.mean);
    c.stddev = std::min(std::sqrt((1.0 - rho) * c.stddev * c.stddev +
                                  rho * residual * residual),
                        config.initial_stddev);
  }
  mog_sort_by_priority(comps, n);
  return verdict;
}

/// The per-(tag, antenna, channel) Gaussian-mixture immobility model.
class ImmobilityModel {
 public:
  explicit ImmobilityModel(ImmobilityConfig config = {},
                           Metric metric = Metric::kCircular);

  /// Classifies without learning.
  MotionVerdict classify(double value) const;

  /// Classifies and then applies the self-learning update (the per-reading
  /// step of Phase I).  Returns the pre-update classification.
  MotionVerdict observe(double value);

  /// Learns from `value` without using the verdict (absorbs Phase II
  /// readings into the model, §4.3 "when do we learn Gaussian models").
  void learn(double value) { (void)observe(value); }

  /// Components ordered by descending priority (diagnostics/tests).
  const std::vector<GaussianComponent>& components() const noexcept {
    return components_;
  }
  std::size_t component_count() const noexcept { return components_.size(); }
  /// True if any component is mature enough to certify immobility.
  bool has_trusted_component() const noexcept;
  const ImmobilityConfig& config() const noexcept { return config_; }
  Metric metric() const noexcept { return metric_; }

 private:
  ImmobilityConfig config_;
  Metric metric_;
  std::vector<GaussianComponent> components_;
};

}  // namespace tagwatch::core
