#include "core/parallel_assessor.hpp"

#include <algorithm>
#include <cmath>

#include "util/circular.hpp"

namespace tagwatch::core {

namespace {

/// Pops a free block or grows the bank by one block of `k` components.
std::uint32_t allocate_block(std::vector<GaussianComponent>& bank,
                             std::vector<std::uint32_t>& free_list,
                             std::size_t k) {
  if (!free_list.empty()) {
    const std::uint32_t block = free_list.back();
    free_list.pop_back();
    return block;
  }
  const std::size_t offset = bank.size();
  bank.resize(offset + k);
  return static_cast<std::uint32_t>(offset);
}

}  // namespace

ParallelAssessor::ParallelAssessor(AssessorConfig config, std::size_t threads)
    : config_(std::move(config)),
      keying_(config_.detector.keying),
      pool_(threads),
      shards_(pool_.thread_count()) {
  const DetectorConfig& d = config_.detector;
  switch (config_.detector_kind) {
    case DetectorKind::kPhaseMog:
      mode_ = Mode::kMog;
      bank_a_ = {d.phase_mog, Metric::kCircular, true};
      break;
    case DetectorKind::kRssMog:
      mode_ = Mode::kMog;
      bank_a_ = {d.rss_mog, Metric::kLinear, false};
      break;
    case DetectorKind::kPhaseDiff:
      mode_ = Mode::kDiff;
      diff_phase_ = true;
      diff_threshold_ = d.phase_diff_threshold_rad;
      break;
    case DetectorKind::kRssDiff:
      mode_ = Mode::kDiff;
      diff_phase_ = false;
      diff_threshold_ = d.rss_diff_threshold_db;
      break;
    case DetectorKind::kHybridAnd:
    case DetectorKind::kHybridOr:
      mode_ = Mode::kHybrid;
      hybrid_require_both_ =
          config_.detector_kind == DetectorKind::kHybridAnd;
      bank_a_ = {d.phase_mog, Metric::kCircular, true};
      bank_b_ = {d.rss_mog, Metric::kLinear, false};
      break;
  }
  if (mode_ != Mode::kDiff) {
    // Validate mixture parameters up front with the exact checks (and
    // exceptions) the serial path applies on first model construction.
    (void)ImmobilityModel(bank_a_.config, bank_a_.metric);
    if (mode_ == Mode::kHybrid) {
      (void)ImmobilityModel(bank_b_.config, bank_b_.metric);
    }
  }
}

std::uint64_t ParallelAssessor::mog_key(std::uint8_t antenna,
                                        std::uint32_t channel) const noexcept {
  // Mirrors MogDetector::key_of under MogKeying.
  const std::uint64_t a = keying_.per_antenna ? antenna : 0u;
  const std::uint64_t c = keying_.per_channel ? channel : 0u;
  return (a << 32) | c;
}

void ParallelAssessor::begin_window() {
  // Readings buffered before the window belong to closed-window semantics:
  // drain them before the epoch moves.
  flush();
  ++window_epoch_;
  window_open_ = true;
  last_window_.clear();
}

void ParallelAssessor::ingest(const rf::TagReading& reading) {
  auto [it, inserted] = routes_.try_emplace(reading.epc);
  if (inserted) {
    const std::size_t shard_index = reading.epc.hash() % shards_.size();
    Shard& shard = shards_[shard_index];
    std::uint32_t slot_index;
    if (!shard.free_slots.empty()) {
      slot_index = shard.free_slots.back();
      shard.free_slots.pop_back();
    } else {
      slot_index = static_cast<std::uint32_t>(shard.slots.size());
      shard.slots.emplace_back();
    }
    TagSlot& slot = shard.slots[slot_index];
    slot.epc = reading.epc;
    slot.window_epoch = 0;  // Never equals an open epoch (those are >= 1).
    slot.window_readings = 0;
    slot.moving_votes = 0;
    slot.live = true;
    it->second = Route{static_cast<std::uint32_t>(shard_index), slot_index};
  }
  const Route route = it->second;
  Shard& shard = shards_[route.shard];
  PendingReading p;
  p.slot = route.slot;
  p.channel = static_cast<std::uint32_t>(reading.channel);
  p.antenna = reading.antenna;
  p.phase_rad = reading.phase_rad;
  p.rssi_dbm = reading.rssi_dbm;
  p.timestamp = reading.timestamp;
  shard.pending.push_back(p);
}

void ParallelAssessor::flush() {
  bool any = false;
  for (const Shard& shard : shards_) {
    if (!shard.pending.empty()) {
      any = true;
      break;
    }
  }
  if (!any) return;
  pool_.run(shards_.size(),
            [this](std::size_t s) { drain_shard(shards_[s]); });
}

ParallelAssessor::KeyedState& ParallelAssessor::keyed_insert(
    TagSlot& slot, std::uint64_t key, bool& created) {
  const auto it = std::lower_bound(
      slot.keyed.begin(), slot.keyed.end(), key,
      [](const KeyedState& state, std::uint64_t k) { return state.key < k; });
  if (it != slot.keyed.end() && it->key == key) {
    created = false;
    return *it;
  }
  created = true;
  KeyedState fresh;
  fresh.key = key;
  return *slot.keyed.insert(it, fresh);
}

MotionVerdict ParallelAssessor::bank_observe(Shard& shard, KeyedState& state,
                                             bool bank_b, double value) {
  const BankSpec& spec = bank_b ? bank_b_ : bank_a_;
  std::vector<GaussianComponent>& bank = bank_b ? shard.comps_b
                                                : shard.comps_a;
  std::vector<std::uint32_t>& free_list =
      bank_b ? shard.free_blocks_b : shard.free_blocks_a;
  std::uint32_t& block = bank_b ? state.block_b : state.block_a;
  std::uint32_t& live = bank_b ? state.n_b : state.n_a;
  if (block == KeyedState::kNoBlock) {
    block = allocate_block(bank, free_list, spec.config.max_components);
    live = 0;
  }
  // Take the pointer only after allocation: the resize above may move the
  // bank's storage.
  std::size_t n = live;
  const MotionVerdict verdict =
      mog_observe(bank.data() + block, n, spec.config, spec.metric, value);
  live = static_cast<std::uint32_t>(n);
  return verdict;
}

void ParallelAssessor::drain_shard(Shard& shard) {
  for (const PendingReading& p : shard.pending) {
    TagSlot& slot = shard.slots[p.slot];
    MotionVerdict verdict = MotionVerdict::kMoving;
    switch (mode_) {
      case Mode::kMog: {
        bool created = false;
        KeyedState& state =
            keyed_insert(slot, mog_key(p.antenna, p.channel), created);
        const double value = bank_a_.use_phase ? p.phase_rad : p.rssi_dbm;
        verdict = bank_observe(shard, state, false, value);
        break;
      }
      case Mode::kDiff: {
        // Diff keys per (antenna, channel) unconditionally, like
        // DiffDetector.
        const std::uint64_t key =
            (static_cast<std::uint64_t>(p.antenna) << 32) | p.channel;
        bool created = false;
        KeyedState& state = keyed_insert(slot, key, created);
        const double value = diff_phase_ ? p.phase_rad : p.rssi_dbm;
        if (created) {
          // First reading on a pair: no baseline yet — moving.
          verdict = MotionVerdict::kMoving;
        } else {
          const double dist =
              diff_phase_ ? util::circular_distance(value, state.last_value)
                          : std::abs(value - state.last_value);
          verdict = dist > diff_threshold_ ? MotionVerdict::kMoving
                                           : MotionVerdict::kStationary;
        }
        state.last_value = value;
        break;
      }
      case Mode::kHybrid: {
        bool created = false;
        KeyedState& state =
            keyed_insert(slot, mog_key(p.antenna, p.channel), created);
        const MotionVerdict phase =
            bank_observe(shard, state, false, p.phase_rad);
        const MotionVerdict rss = bank_observe(shard, state, true, p.rssi_dbm);
        const bool moving =
            hybrid_require_both_
                ? (phase == MotionVerdict::kMoving &&
                   rss == MotionVerdict::kMoving)
                : (phase == MotionVerdict::kMoving ||
                   rss == MotionVerdict::kMoving);
        verdict = moving ? MotionVerdict::kMoving : MotionVerdict::kStationary;
        break;
      }
    }
    slot.last_seen = p.timestamp;
    if (window_open_) {
      if (slot.window_epoch != window_epoch_) {
        slot.window_epoch = window_epoch_;
        slot.window_readings = 0;
        slot.moving_votes = 0;
      }
      ++slot.window_readings;
      if (verdict == MotionVerdict::kMoving) ++slot.moving_votes;
    }
  }
  shard.pending.clear();
}

void ParallelAssessor::evict(Shard& shard, std::uint32_t slot_index) {
  TagSlot& slot = shard.slots[slot_index];
  for (const KeyedState& state : slot.keyed) {
    if (state.block_a != KeyedState::kNoBlock) {
      shard.free_blocks_a.push_back(state.block_a);
    }
    if (state.block_b != KeyedState::kNoBlock) {
      shard.free_blocks_b.push_back(state.block_b);
    }
  }
  slot.keyed.clear();
  slot.live = false;
  routes_.erase(slot.epc);
  shard.free_slots.push_back(slot_index);
}

const std::vector<TagAssessment>& ParallelAssessor::assess(util::SimTime now) {
  if (!window_open_) {
    // Window already closed: replay the cached result (see MotionAssessor).
    return last_window_;
  }
  flush();
  window_open_ = false;
  last_window_.clear();
  for (Shard& shard : shards_) {
    for (std::uint32_t s = 0;
         s < static_cast<std::uint32_t>(shard.slots.size()); ++s) {
      TagSlot& slot = shard.slots[s];
      if (!slot.live) continue;
      if (now - slot.last_seen > config_.forget_after) {
        // §4.3: a tag gone for a long while has its models removed.
        evict(shard, s);
        continue;
      }
      if (slot.window_epoch == window_epoch_ && slot.window_readings > 0) {
        TagAssessment a;
        a.epc = slot.epc;
        a.window_readings = slot.window_readings;
        a.moving_votes = slot.moving_votes;
        a.mobile = slot.moving_votes >= config_.mobile_vote_threshold;
        last_window_.push_back(std::move(a));
      }
    }
  }
  std::sort(last_window_.begin(), last_window_.end(),
            [](const TagAssessment& a, const TagAssessment& b) {
              return a.epc < b.epc;
            });
  return last_window_;
}

std::vector<util::Epc> ParallelAssessor::mobile_tags(util::SimTime now) {
  std::vector<util::Epc> mobile;
  for (const TagAssessment& a : assess(now)) {
    if (a.mobile) mobile.push_back(a.epc);
  }
  return mobile;
}

}  // namespace tagwatch::core
