#include "core/rate_model.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

namespace tagwatch::core {

InventoryCostModel::InventoryCostModel(double tau0_s, double taubar_s)
    : tau0_s_(tau0_s), taubar_s_(taubar_s) {
  if (tau0_s < 0.0 || taubar_s <= 0.0) {
    throw std::invalid_argument(
        "InventoryCostModel: need tau0 >= 0, taubar > 0");
  }
}

InventoryCostModel InventoryCostModel::paper_fit() {
  return InventoryCostModel(0.019, 0.00018);
}

double InventoryCostModel::regressor(std::size_t n) {
  if (n == 0) return 0.0;
  if (n == 1) return 1.0;
  const double nd = static_cast<double>(n);
  return nd * std::numbers::e * std::log(nd);
}

InventoryCostModel InventoryCostModel::fit(
    std::span<const std::size_t> tag_counts,
    std::span<const util::SimDuration> durations) {
  if (tag_counts.size() != durations.size() || tag_counts.size() < 2) {
    throw std::invalid_argument("InventoryCostModel::fit: need >= 2 samples");
  }
  std::vector<double> xs;
  std::vector<double> ys;
  xs.reserve(tag_counts.size());
  ys.reserve(durations.size());
  for (std::size_t i = 0; i < tag_counts.size(); ++i) {
    xs.push_back(regressor(tag_counts[i]));
    ys.push_back(util::to_seconds(durations[i]));
  }
  const util::LinearFit fit = util::fit_line(xs, ys);
  // A noisy fit can produce a (slightly) negative intercept; clamp to the
  // physical domain rather than reject, but keep the slope requirement.
  InventoryCostModel model(std::max(fit.intercept, 0.0),
                           std::max(fit.slope, 1e-9));
  model.r_squared_ = fit.r_squared;
  return model;
}

double InventoryCostModel::cost_seconds(std::size_t n) const {
  return tau0_s_ + taubar_s_ * regressor(n);
}

}  // namespace tagwatch::core
