// The inventory-cost / reading-rate model (paper §2.2, Definition 1).
//
//   C(n) = τ0 + n·e·τ̄·ln(n)   for n > 1
//   C(1) = τ0 + τ̄
//   Λ(n) = 1 / C(n)            (individual reading rate, Hz)
//
// τ0 is the per-round start-up cost and τ̄ the mean slot duration.  The
// model is linear in (τ0, τ̄), so both can be estimated from measured
// round durations by ordinary least squares — the paper fits τ0 = 19 ms and
// τ̄ = 0.18 ms on the ImpinJ R420; the bench fits the same way against the
// simulator.
#pragma once

#include <span>

#include "util/least_squares.hpp"
#include "util/sim_time.hpp"

namespace tagwatch::core {

/// Inventory-cost model with fitted (τ0, τ̄).
class InventoryCostModel {
 public:
  /// Constructs with explicit parameters (seconds).
  InventoryCostModel(double tau0_s, double taubar_s);

  /// The paper's hardware-fitted parameters: τ0 = 19 ms, τ̄ = 0.18 ms.
  static InventoryCostModel paper_fit();

  /// Least-squares fit from measured (tag count, round duration) pairs.
  /// Requires at least two samples with distinct regressor values.
  static InventoryCostModel fit(std::span<const std::size_t> tag_counts,
                                std::span<const util::SimDuration> durations);

  /// Expected time to inventory n tags once, in seconds.  C(0) = τ0.
  double cost_seconds(std::size_t n) const;

  /// Same as a SimDuration (rounded to microseconds).
  util::SimDuration cost(std::size_t n) const {
    return util::from_seconds(cost_seconds(n));
  }

  /// Individual reading rate Λ(n) in Hz (Eqn. 6).
  double irr_hz(std::size_t n) const { return 1.0 / cost_seconds(n); }

  double tau0_seconds() const noexcept { return tau0_s_; }
  double taubar_seconds() const noexcept { return taubar_s_; }
  /// R² of the fit (1.0 when constructed directly).
  double fit_r_squared() const noexcept { return r_squared_; }

  /// The regressor x(n) with C(n) = τ0 + τ̄·x(n): x(1) = 1,
  /// x(n) = n·e·ln(n) for n > 1 (and x(0) = 0).
  static double regressor(std::size_t n);

 private:
  double tau0_s_;
  double taubar_s_;
  double r_squared_ = 1.0;
};

}  // namespace tagwatch::core
