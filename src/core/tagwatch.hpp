// The Tagwatch controller: the two-phase rate-adaptive reading loop.
//
// Tagwatch is a middle layer between the reader (via an LLRP client) and
// upper applications (Fig. 5).  Each cycle:
//
//   Phase I  — inventory ALL tags briefly; assess each tag's motion state
//              from its backscatter phase (MotionAssessor).
//   Phase II — cover the target tags (assessed-mobile ∪ user-pinned) with
//              Select bitmasks chosen by greedy set cover, then read only
//              that subpopulation intensively for the rest of the cycle.
//
// Every reading from both phases flows through the ReadingPipeline — an
// ordered fan-out to the assessor (immobility-model training), the history
// database, the application sink, and any attached telemetry — which is
// what makes state transitions converge within about one cycle (§4.3).
//
// The controller drives the reader exclusively through the abstract
// llrp::ReaderClient transport: the simulator, a journal replay, or (in
// the future) a physical LLRP reader all plug in behind it.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "core/assessor.hpp"
#include "core/history.hpp"
#include "core/incremental_planner.hpp"
#include "core/parallel_assessor.hpp"
#include "core/pipeline.hpp"
#include "core/resilience.hpp"
#include "core/setcover.hpp"
#include "llrp/reader_client.hpp"
#include "util/rng.hpp"
#include "util/task_pool.hpp"
#include "util/wall_clock.hpp"

namespace tagwatch::core {

/// How Phase II schedules its reading.
enum class ScheduleMode {
  kGreedyCover,    ///< Tagwatch: greedy set-cover bitmasks (the paper).
  kNaiveEpcMasks,  ///< Baseline: one full-EPC bitmask per target.
  kReadAll,        ///< Baseline: no selection — keep inventorying everything.
};

/// Cross-cycle Phase-II planning policy (under ScheduleMode::kGreedyCover).
struct PlannerConfig {
  /// Keep the candidate structure alive across cycles and apply per-cycle
  /// scene/target deltas instead of rebuilding the BitmaskIndex + greedy
  /// cover from scratch.  Plans are bit-identical either way (enforced by
  /// differential tests); incremental planning is the large-scene fast
  /// path (131k–1M tags).
  bool incremental = false;
  /// Delta fraction of the scene (arrivals + departures + target flips,
  /// over scene size) above which the incremental planner rebuilds its
  /// structure from scratch instead of patching it.
  double churn_threshold = 0.15;
  /// Worker threads of Phase-II candidate generation: BitmaskIndex
  /// candidate sweeps and incremental-planner rebuilds shard across a
  /// shared pool of this size.  Any value produces bit-identical plans
  /// and journal digests (enforced by differential tests); raising it
  /// only buys planning throughput on large scenes.
  std::size_t threads = 1;
};

/// Controller configuration (paper §6 "parameter choice" defaults).
struct TagwatchConfig {
  AssessorConfig assessor = {};
  /// Worker threads (and shards) of the Phase-I ingestion engine.  Any
  /// value produces bit-identical cycles, assessments and journal digests
  /// (enforced by differential tests); raising it only buys ingestion
  /// throughput on large scenes.
  std::size_t assessor_threads = 1;
  /// Cost model used by the scheduler's relative-gain formula; fit it on
  /// measurements (bench_irr_model) or take the paper's values.
  InventoryCostModel cost_model = InventoryCostModel::paper_fit();
  ScheduleMode mode = ScheduleMode::kGreedyCover;
  /// Gain-evaluation strategy of the greedy cover under kGreedyCover.
  /// kLazy is the large-scene fast path; kDense the full-rescan reference.
  /// Both produce identical plans (enforced by differential tests).
  GreedyEvaluation greedy_evaluation = GreedyEvaluation::kLazy;
  /// Fixed Phase II length (paper: 5 seconds).
  util::SimDuration phase2_duration = util::sec(5);
  /// Optional per-cycle override of the Phase II length, consulted after
  /// assessment with the cycle's target count and the scene size — the
  /// paper's "upper applications can adjust the length of Phase II
  /// according to their requirements" hook.  Return values are clamped to
  /// [100 ms, 60 s].  nullptr: use phase2_duration unchanged.
  std::function<util::SimDuration(std::size_t targets, std::size_t scene)>
      phase2_policy;
  /// Cross-cycle planner policy (kGreedyCover only; other modes and the
  /// degraded/read-all paths never consult it).
  PlannerConfig planner;
  /// Pin every util::simd kernel to the portable scalar implementation
  /// instead of the best instruction set detected at startup.  All kernels
  /// are bit-identical across implementations (enforced by differential
  /// tests), so this only trades speed — it exists for A/B benchmarking
  /// and for ruling SIMD out when chasing a miscompare.
  bool force_scalar_simd = false;
  /// Above this mobile fraction, selective reading stops paying off and the
  /// controller falls back to reading everything (§3 "Scope").
  double mobile_fraction_threshold = 0.20;
  /// Inventory rounds per antenna in Phase I ("read all tags once").
  std::size_t phase1_rounds_per_antenna = 1;
  /// User-pinned "concerned" tags: always scheduled in Phase II (§5).
  std::vector<util::Epc> pinned_targets;
  gen2::Session session = gen2::Session::kS1;
  /// Inventoried-flag value unfiltered rounds target when rearm_session
  /// is false (re-armed rounds always query A).
  gen2::InvFlag query_target = gen2::InvFlag::kA;
  /// Open every unfiltered round with a match-all Select re-arming the
  /// session flag (the classic single-reader discipline).  Fleet
  /// controllers coordinating readers through shared session state set
  /// this false so one reader's ACKs stay visible to the others.
  bool rearm_session = true;
  /// Reader identity stamped into every ReadingContext this controller
  /// dispatches (index into the fleet's reader list; 0 standalone).
  std::size_t source_id = 0;
  /// Initial Q for Phase I rounds (Phase II rounds derive Q from the
  /// scheduled bitmask's expected coverage).
  std::uint8_t phase1_initial_q = 4;
  /// Set the Gen2 Truncate bit on Phase II Selects: selected tags reply
  /// only the EPC bits after the bitmask, shortening every successful slot
  /// (an extension; the paper reads full EPCs).
  bool use_truncation = false;
  /// Account the real scheduling compute time on the simulation clock so
  /// the inter-phase gap (Fig. 17) includes it.
  bool charge_compute_time = true;
  /// How the controller survives a faulty transport: retry/backoff policy,
  /// degraded read-all fallback, per-cycle watchdog budget.
  ResilienceConfig resilience;
  /// Host clock for schedule-compute timing (Fig. 17) and, via the
  /// pipeline, per-sink dispatch latency.  nullptr: the steady_clock-backed
  /// util::WallClock::system().  Non-owning; must outlive the controller.
  util::WallClock* wall_clock = nullptr;
};

/// What happened in one cycle.
struct CycleReport {
  std::size_t cycle_index = 0;
  /// EPCs read during Phase I (the scene snapshot used for scheduling).
  std::vector<util::Epc> scene;
  /// Assessed-mobile EPCs.
  std::vector<util::Epc> mobile;
  /// Scheduled targets (mobile ∪ pinned∩scene).
  std::vector<util::Epc> targets;
  /// The Phase II plan (empty selections under kReadAll or fallback).
  Schedule schedule;
  /// True when Phase II read everything (no targets, fraction above
  /// threshold, or kReadAll mode).
  bool read_all_fallback = false;
  /// True when the schedule came from the persistent cross-cycle planner
  /// (config.planner.incremental under kGreedyCover).
  bool planner_incremental = false;
  /// With planner_incremental: true when this cycle's delta exceeded the
  /// churn threshold (or the planner had no prior state) and the candidate
  /// structure was rebuilt from scratch rather than patched.
  bool planner_rebuild = false;
  std::size_t phase1_readings = 0;
  std::size_t phase2_readings = 0;
  util::SimDuration phase1_duration{0};
  util::SimDuration phase2_duration{0};
  /// Wall-clock time spent on assessment + bitmask scheduling (Fig. 17's
  /// "extra time cost"), in milliseconds.
  double schedule_compute_ms = 0.0;
  /// Gap between the last Phase I reading and the first Phase II reading
  /// on the simulation clock (Fig. 17's measured quantity).
  std::optional<util::SimDuration> interphase_gap;
  /// Per-tag Phase II reading counts (IRR = count / phase2 duration).
  std::unordered_map<util::Epc, std::size_t> phase2_counts;
  /// Gen2 slot accounting summed over every ROSpec the cycle executed
  /// (both phases) — the raw material for efficiency telemetry.
  gen2::RoundStats slot_totals;

  // ----------------------------------------------- resilience telemetry
  /// True when the cycle ran in the degraded read-all state (entered after
  /// K consecutive Phase-II failures; distinct from read_all_fallback,
  /// which selective cycles can also set for scheduling reasons).
  bool degraded_mode = false;
  /// True when the per-cycle watchdog budget cut Phase II short.
  bool watchdog_tripped = false;
  std::size_t execute_failures = 0;  ///< Errored execute attempts.
  std::size_t retries = 0;           ///< Re-issued executes.
  std::size_t salvaged_readings = 0; ///< Readings kept from failures.
  util::SimDuration backoff_time{0}; ///< Reader time spent backing off.
  /// Antenna indexes quarantined out of ROSpec construction (cumulative).
  std::vector<std::size_t> quarantined_antennas;
  /// Cumulative controller health counters at cycle end.
  HealthMetrics health;
};

class PipelineMetrics;  // core/metrics.hpp

/// The rate-adaptive reading controller.
class TagwatchController {
 public:
  /// `client` must outlive the controller.  Any ReaderClient backend works:
  /// the simulator, a recording decorator, or a journal replay.
  TagwatchController(TagwatchConfig config, llrp::ReaderClient& client);

  /// Runs one full cycle (Phase I + Phase II) and reports it.
  CycleReport run_cycle();

  /// Runs `n` cycles, returning every report.
  std::vector<CycleReport> run_cycles(std::size_t n);

  /// Delivery of every reading (both phases) to the upper application —
  /// sugar for installing a CallbackSink named "app" in the pipeline.
  /// Passing nullptr removes it.
  void set_read_listener(gen2::ReadCallback listener);

  /// The delivery pipeline.  Built-in sinks "assessor" and "history" are
  /// registered at construction; applications append their own (telemetry,
  /// databases, trackers) without touching the control flow.
  ReadingPipeline& pipeline() noexcept { return pipeline_; }
  const ReadingPipeline& pipeline() const noexcept { return pipeline_; }

  const HistoryDatabase& history() const noexcept { return history_; }
  ParallelAssessor& assessor() noexcept { return assessor_; }
  const TagwatchConfig& config() const noexcept { return config_; }
  llrp::ReaderClient& client() noexcept { return *client_; }
  util::SimTime now() const noexcept { return client_->now(); }

  /// Arms a one-shot session re-arm: the next cycle's Phase I opens with a
  /// match-all Select resetting the session flag to A even when
  /// config().rearm_session is false.  Zone takeover uses it — tags
  /// inherited from a failed reader can still hold B flags (S2/S3 survive
  /// power gaps), and a no-rearm policy would otherwise never read them.
  void arm_session_rearm_once() noexcept { rearm_once_ = true; }

  /// Extra always-scheduled Phase II targets, beyond
  /// config().pinned_targets — the fleet's re-cover queue during zone
  /// takeover.  Replaces the previous set; like pinned targets, only EPCs
  /// present in the cycle's scene are actually scheduled.
  void set_extra_targets(std::vector<util::Epc> targets) {
    extra_targets_ = std::move(targets);
  }

  /// Cumulative resilience counters (faults, retries, backoff, degraded
  /// transitions) since construction.
  const HealthMetrics& health() const noexcept { return health_; }
  /// True while the controller runs the read-all baseline because of
  /// transport failures.
  bool degraded() const noexcept { return degraded_; }
  /// Antenna indexes excluded from ROSpec construction after kAntennaLost.
  const std::set<std::size_t>& quarantined_antennas() const noexcept {
    return quarantined_;
  }

  /// The persistent cross-cycle planner, or nullptr when
  /// config().planner.incremental is off or no selective cycle has run
  /// yet (it is constructed lazily on first use).
  const IncrementalPlanner* incremental_planner() const noexcept {
    return incremental_planner_.get();
  }

 private:
  /// Updates the report's per-phase counters for every reading in the
  /// batch, then pushes the whole batch through the pipeline in one
  /// dispatch_batch() call.
  void deliver_batch(const std::vector<rf::TagReading>& readings,
                     CycleReport& report, ReadPhase phase);
  llrp::ROSpec make_read_all_rospec(util::SimDuration duration) const;
  void run_phase2_selected(const Schedule& schedule, util::SimTime t_end,
                           util::SimTime watchdog_deadline,
                           CycleReport& report, bool& phase2_failed);
  /// Executes `spec` under the retry policy: errored attempts salvage
  /// their partial readings, charge jittered exponential backoff onto the
  /// reader clock, quarantine lost antennas (re-issuing the spec without
  /// them), and stop at the watchdog deadline.  `gave_up` reports whether
  /// the spec was ultimately abandoned.
  llrp::ExecutionResult execute_resilient(llrp::ROSpec spec,
                                          util::SimTime watchdog_deadline,
                                          CycleReport& report, bool& gave_up);
  /// Antenna indexes not quarantined, in order.
  std::vector<std::size_t> healthy_antennas() const;
  /// Removes quarantined antennas from every AISpec (expanding empty
  /// "all antennas" lists first).  Returns false when nothing healthy
  /// remains to drive.
  bool strip_quarantined(llrp::ROSpec& spec) const;
  /// Feeds the Phase-II outcome to the degradation state machine.
  void update_degradation(bool phase2_failed);

  TagwatchConfig config_;
  llrp::ReaderClient* client_;
  ParallelAssessor assessor_;
  HistoryDatabase history_;
  ReadingPipeline pipeline_;
  std::size_t cycle_counter_ = 0;
  /// Timestamp of the first Phase II reading of the running cycle.
  std::optional<util::SimTime> first_read_;
  /// One-shot Phase-I session re-arm (see arm_session_rearm_once()).
  bool rearm_once_ = false;
  /// Scene-gated extra Phase II targets (see set_extra_targets()).
  std::vector<util::Epc> extra_targets_;
  /// Lazily-built persistent Phase II planner (planner.incremental).
  std::unique_ptr<IncrementalPlanner> incremental_planner_;
  /// Lazily-built candidate-generation pool (planner.threads > 1);
  /// nullptr means the serial path.
  std::unique_ptr<util::TaskPool> planning_pool_;

  // ------------------------------------------------- resilience state
  HealthMetrics health_;
  util::Rng jitter_rng_;
  std::set<std::size_t> quarantined_;
  bool degraded_ = false;
  std::size_t consecutive_phase2_failures_ = 0;
  std::size_t healthy_streak_ = 0;
};

/// Attaches a PipelineMetrics sink to the controller's pipeline (bound to
/// observe the pipeline's per-sink stats) and returns it.  Defined in
/// metrics-aware code to keep this header light.
std::shared_ptr<PipelineMetrics> attach_metrics(TagwatchController& controller);

}  // namespace tagwatch::core
