#include "core/pipeline.hpp"

#include <stdexcept>

#include "core/assessor.hpp"
#include "core/history.hpp"
#include "core/parallel_assessor.hpp"

namespace tagwatch::core {

void ReadingPipeline::add_sink(std::shared_ptr<ReadingSink> sink) {
  if (!sink) throw std::invalid_argument("ReadingPipeline: null sink");
  if (find(sink->name()) != nullptr) {
    throw std::invalid_argument("ReadingPipeline: duplicate sink '" +
                                std::string(sink->name()) + "'");
  }
  Entry entry;
  entry.stats.emplace_back();
  entry.stats.back().name = std::string(sink->name());
  entry.sink = std::move(sink);
  entries_.push_back(std::move(entry));
}

SinkStats& ReadingPipeline::stats_slot(Entry& entry, std::size_t source_id) {
  for (SinkStats& s : entry.stats) {
    if (s.source_id == source_id) return s;
  }
  SinkStats row;
  row.name = entry.stats.front().name;
  row.source_id = source_id;
  entry.stats.push_back(std::move(row));
  return entry.stats.back();
}

void ReadingPipeline::set_sink(std::shared_ptr<ReadingSink> sink) {
  if (!sink) throw std::invalid_argument("ReadingPipeline: null sink");
  for (Entry& entry : entries_) {
    if (entry.sink->name() == sink->name()) {
      // Keep the slot (and its accumulated stats) — only the sink changes.
      entry.sink = std::move(sink);
      return;
    }
  }
  add_sink(std::move(sink));
}

bool ReadingPipeline::remove_sink(std::string_view name) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->sink->name() == name) {
      entries_.erase(it);
      return true;
    }
  }
  return false;
}

ReadingSink* ReadingPipeline::find(std::string_view name) {
  for (Entry& entry : entries_) {
    if (entry.sink->name() == name) return entry.sink.get();
  }
  return nullptr;
}

void ReadingPipeline::dispatch(const rf::TagReading& reading,
                               const ReadingContext& context) {
  ++dispatched_;
  for (Entry& entry : entries_) {
    SinkStats& stats = stats_slot(entry, context.source_id);
    const double t0 = clock_->now_seconds();
    bool accepted = false;
    try {
      accepted = entry.sink->on_reading(reading, context);
    } catch (const std::exception&) {
      // A misbehaving sink loses its own reading, never anyone else's:
      // delivery continues to the remaining sinks and the cycle survives.
      ++stats.exceptions;
    }
    stats.dispatch_seconds += clock_->now_seconds() - t0;
    ++stats.batches;
    if (accepted) {
      ++stats.delivered;
      if (context.recovered) ++stats.recovered;
    } else {
      ++stats.dropped;
    }
  }
}

void ReadingPipeline::dispatch_batch(
    const std::vector<rf::TagReading>& readings,
    const ReadingContext& context) {
  if (readings.empty()) return;
  dispatched_ += readings.size();
  for (Entry& entry : entries_) {
    SinkStats& stats = stats_slot(entry, context.source_id);
    const double t0 = clock_->now_seconds();
    for (const rf::TagReading& reading : readings) {
      bool accepted = false;
      try {
        accepted = entry.sink->on_reading(reading, context);
      } catch (const std::exception&) {
        // Same isolation as dispatch(): a throwing sink loses its own
        // reading, never anyone else's.
        ++stats.exceptions;
      }
      if (accepted) {
        ++stats.delivered;
        if (context.recovered) ++stats.recovered;
      } else {
        ++stats.dropped;
      }
    }
    stats.dispatch_seconds += clock_->now_seconds() - t0;
    ++stats.batches;
  }
}

void ReadingPipeline::end_cycle(const CycleReport& report) {
  for (Entry& entry : entries_) {
    try {
      entry.sink->on_cycle_end(report);
    } catch (const std::exception&) {
      // Cycle-end isn't attributable to any one source: account to row 0.
      ++entry.stats.front().exceptions;
    }
  }
}

std::vector<SinkStats> ReadingPipeline::stats() const {
  std::vector<SinkStats> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    out.insert(out.end(), entry.stats.begin(), entry.stats.end());
  }
  return out;
}

bool HistorySink::on_reading(const rf::TagReading& reading,
                             const ReadingContext& context) {
  (void)context;
  history_->record(reading);
  return true;
}

bool AssessorSink::on_reading(const rf::TagReading& reading,
                              const ReadingContext& context) {
  (void)context;
  assessor_->ingest(reading);
  return true;
}

bool ParallelAssessorSink::on_reading(const rf::TagReading& reading,
                                      const ReadingContext& context) {
  (void)context;
  assessor_->ingest(reading);
  return true;
}

}  // namespace tagwatch::core
