// Sharded, batched Phase-I ingestion engine — bit-identical to the serial
// MotionAssessor for ANY thread count, by construction:
//
//  * ingest() is serial and cheap: it routes the reading to a shard chosen
//    by the stable content hash of the EPC, so every reading of one tag
//    lands on the same shard in arrival order;
//  * per-tag detector state depends only on that tag's own readings, so
//    shards can drain concurrently (util::TaskPool fork/join) while each
//    tag still sees exactly the serial per-reading update — both paths
//    call the shared mog_* kernels of core/immobility.hpp;
//  * assess() merges shard results and sorts by EPC, the same order the
//    serial assessor emits, so assessments (and everything derived from
//    them: CycleReports, journal digests) are byte-equal whether the
//    engine runs with 1 thread or 8.
//
// The speedup over MotionAssessor does not come from threads alone: the
// engine replaces the serial path's pointer-chasing layout (unordered_map
// node per tag, std::map tree walk per (antenna, channel) model, one heap
// vector per model, a std::stable_sort temporary buffer per observation)
// with dense per-slot storage — keyed states in a sorted vector, Gaussian
// components in pooled fixed-capacity blocks per shard — so the hot loop
// is allocation-free and mostly sequential.  bench_phase1_scaling measures
// both effects.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/assessor.hpp"
#include "rf/measurement.hpp"
#include "util/epc.hpp"
#include "util/sim_time.hpp"
#include "util/task_pool.hpp"

namespace tagwatch::core {

/// Drop-in batched replacement for MotionAssessor (same window protocol:
/// begin_window / ingest / assess).  Readings buffer in per-shard queues
/// and are drained on flush(), which begin_window() and assess() call
/// implicitly — detector state is always current at every observable
/// boundary, it just lags between them.
class ParallelAssessor {
 public:
  /// `threads` sizes the TaskPool and the shard count.  Any value yields
  /// identical output; more threads only buy ingestion throughput.
  /// Mixture parameters are validated here (the serial path defers to the
  /// first model construction) — throws std::invalid_argument like
  /// ImmobilityModel does.
  explicit ParallelAssessor(AssessorConfig config = {},
                            std::size_t threads = 1);

  /// Opens an assessment window (drains any buffered readings first,
  /// under closed-window semantics, exactly as if they had been applied
  /// on arrival).
  void begin_window();

  /// Buffers one reading on its tag's shard.  O(1) amortized; the
  /// detector update itself runs at the next flush().
  void ingest(const rf::TagReading& reading);

  /// Drains all buffered readings through the shard detectors on the
  /// TaskPool.  Idempotent; called implicitly by begin_window()/assess().
  void flush();

  /// Ends the window: per-tag assessments for tags read in the window,
  /// sorted by EPC, with forget_after eviction applied once.  Repeat
  /// calls replay the cached result until the next begin_window().
  const std::vector<TagAssessment>& assess(util::SimTime now);

  /// EPCs assessed mobile in the last window (convenience over assess()).
  std::vector<util::Epc> mobile_tags(util::SimTime now);

  /// Tags currently tracked (have detector state).
  std::size_t tracked_count() const noexcept { return routes_.size(); }

  std::size_t thread_count() const noexcept { return pool_.thread_count(); }
  const AssessorConfig& config() const noexcept { return config_; }

 private:
  /// Which detector family the configured kind maps to.
  enum class Mode { kMog, kDiff, kHybrid };

  /// One mixture bank (phase or RSS scale).
  struct BankSpec {
    ImmobilityConfig config;
    Metric metric = Metric::kCircular;
    bool use_phase = true;
  };

  /// Per-(antenna, channel) detector state of one tag.  MoG kinds use
  /// block_a (and block_b for hybrid) — indices of fixed-capacity
  /// GaussianComponent blocks in the owning shard's pool; diff kinds use
  /// last_value only.
  struct KeyedState {
    std::uint64_t key = 0;
    std::uint32_t block_a = kNoBlock;
    std::uint32_t block_b = kNoBlock;
    std::uint32_t n_a = 0;
    std::uint32_t n_b = 0;
    double last_value = 0.0;

    static constexpr std::uint32_t kNoBlock = 0xffffffffu;
  };

  /// Dense per-tag state (the engine's analogue of MotionAssessor's
  /// TagState + MotionDetector).
  struct TagSlot {
    util::Epc epc;
    util::SimTime last_seen{0};
    std::uint64_t window_epoch = 0;
    std::size_t window_readings = 0;
    std::size_t moving_votes = 0;
    bool live = false;
    std::vector<KeyedState> keyed;  ///< Sorted by key.
  };

  /// A buffered reading, already routed to its slot.
  struct PendingReading {
    std::uint32_t slot = 0;
    std::uint32_t channel = 0;
    std::uint8_t antenna = 0;
    double phase_rad = 0.0;
    double rssi_dbm = 0.0;
    util::SimTime timestamp{0};
  };

  /// One shard: the tags whose EPC hashes here, their pooled component
  /// storage, and the readings queued since the last flush.  Shards share
  /// nothing, so draining them concurrently is race-free.
  struct Shard {
    std::vector<TagSlot> slots;
    std::vector<PendingReading> pending;
    std::vector<GaussianComponent> comps_a;  ///< Blocks of bank_a_ capacity.
    std::vector<GaussianComponent> comps_b;  ///< Blocks of bank_b_ capacity.
    std::vector<std::uint32_t> free_blocks_a;
    std::vector<std::uint32_t> free_blocks_b;
    std::vector<std::uint32_t> free_slots;
  };

  /// Where a tracked EPC lives.
  struct Route {
    std::uint32_t shard = 0;
    std::uint32_t slot = 0;
  };

  std::uint64_t mog_key(std::uint8_t antenna,
                        std::uint32_t channel) const noexcept;
  void drain_shard(Shard& shard);
  KeyedState& keyed_insert(TagSlot& slot, std::uint64_t key, bool& created);
  MotionVerdict bank_observe(Shard& shard, KeyedState& state, bool bank_b,
                             double value);
  void evict(Shard& shard, std::uint32_t slot_index);

  AssessorConfig config_;
  Mode mode_ = Mode::kMog;
  BankSpec bank_a_;
  BankSpec bank_b_;
  MogKeying keying_;
  bool diff_phase_ = true;
  double diff_threshold_ = 0.0;
  bool hybrid_require_both_ = false;

  util::TaskPool pool_;
  std::vector<Shard> shards_;
  std::unordered_map<util::Epc, Route> routes_;

  bool window_open_ = false;
  std::uint64_t window_epoch_ = 0;
  /// Result of the last closed window, replayed by repeat assess() calls.
  std::vector<TagAssessment> last_window_;
};

}  // namespace tagwatch::core
