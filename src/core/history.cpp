#include "core/history.hpp"

namespace tagwatch::core {

void HistoryDatabase::record(const rf::TagReading& reading) {
  auto [it, inserted] = tags_.try_emplace(reading.epc);
  TagHistory& h = it->second;
  if (inserted) h.first_seen = reading.timestamp;
  h.last_seen = reading.timestamp;
  ++h.total_readings;
  ++total_;
  h.recent.push_back(reading);
  while (h.recent.size() > retain_per_tag_) h.recent.pop_front();
}

const TagHistory* HistoryDatabase::find(const util::Epc& epc) const {
  const auto it = tags_.find(epc);
  return it == tags_.end() ? nullptr : &it->second;
}

std::vector<util::Epc> HistoryDatabase::seen_since(util::SimTime since) const {
  std::vector<util::Epc> out;
  for (const auto& [epc, h] : tags_) {
    if (h.last_seen >= since) out.push_back(epc);
  }
  return out;
}

std::size_t HistoryDatabase::evict_older_than(util::SimTime before) {
  std::size_t evicted = 0;
  for (auto it = tags_.begin(); it != tags_.end();) {
    if (it->second.last_seen < before) {
      it = tags_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  return evicted;
}

std::vector<rf::TagReading> HistoryDatabase::readings_in(
    const util::Epc& epc, util::SimTime from, util::SimTime to) const {
  std::vector<rf::TagReading> out;
  const TagHistory* h = find(epc);
  if (!h) return out;
  for (const auto& r : h->recent) {
    if (r.timestamp >= from && r.timestamp < to) out.push_back(r);
  }
  return out;
}

}  // namespace tagwatch::core
