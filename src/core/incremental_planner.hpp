// Incremental cross-cycle Phase-II planning (ROADMAP "million-tag scenes").
//
// The from-scratch pipeline rebuilds the BitmaskIndex candidate table and
// the lazy-greedy cover every cycle, even though the scene and the mover
// set change by a small delta per cycle.  This planner keeps the candidate
// structure alive across cycles and applies per-cycle deltas instead:
//
//   * Per pointer p, the deduplicated candidate rows anchored at targets
//     are exactly the edges of the binary radix trie over the scene's EPC
//     suffixes [p, L), restricted to root→target paths: coverage is
//     constant along an edge and changes exactly at branch nodes, so each
//     edge is one row (mask length d = parent depth + 1).  The planner
//     maintains that skeleton — branch nodes on target paths, with
//     non-target subtrees collapsed to counted "blobs" — under four delta
//     operations: tag arrived (splits at most one edge per trie), tag
//     departed (merges at most one node per trie), tag became a target
//     (expands its path out of a blob with a sparsifying column sweep),
//     tag stopped being a target (collapses its private path back into a
//     blob).  Rows store counts and covered-target lists, not scene-wide
//     coverage bitmaps, so memory stays proportional to the target count
//     — the representation that makes 131k–1M-tag scenes plannable at
//     all (a materialized candidate table at 1M tags would need >100 GB).
//
//   * Plans are provably plan-equivalent to the from-scratch oracle
//     (GreedyCoverScheduler over BitmaskIndex::candidates_for /
//     candidates_for_reference).  The oracle enumerates runs in (target
//     rank, pointer, length) order with global first-coverage-seen
//     dedupe; equal-coverage rows here instead coexist and the greedy
//     breaks gain ties by the key (min-anchor EPC, pointer, d) — the
//     exact first-emission order — so the tied winner, its mask bits,
//     and every accumulated double match the oracle bit for bit, and
//     duplicates are dead weight the greedy can never select (their
//     remaining gain is zero once the winner is taken).  Differential
//     churn tests enforce this every cycle.
//
//   * Past a configurable churn threshold (fraction of the scene changed
//     in one cycle), incremental maintenance stops paying off and the
//     planner rebuilds its structure from scratch — the same fallback
//     discipline as the DFSA frame-size estimators.
#pragma once

#include <cstdint>
#include <vector>

#include "core/rate_model.hpp"
#include "core/setcover.hpp"
#include "util/epc.hpp"

namespace tagwatch::util {
class TaskPool;
}

namespace tagwatch::core {

/// Counters describing what the planner did, cumulatively and in the most
/// recent plan_cycle() call.
struct IncrementalPlannerStats {
  std::uint64_t cycles = 0;              ///< plan_cycle() calls.
  std::uint64_t incremental_cycles = 0;  ///< Cycles served by delta updates.
  std::uint64_t full_rebuilds = 0;       ///< Cycles that rebuilt from scratch.
  std::size_t live_rows = 0;             ///< Candidate rows currently alive.
  std::size_t last_arrivals = 0;         ///< Scene adds in the last cycle.
  std::size_t last_departures = 0;       ///< Scene removes in the last cycle.
  std::size_t last_target_adds = 0;      ///< New targets among staying tags.
  std::size_t last_target_removes = 0;   ///< Dropped targets (staying tags).
  double last_churn = 0.0;               ///< Delta fraction of the last cycle.
  bool last_was_rebuild = false;         ///< Last cycle fell back to rebuild.
};

/// Persistent cross-cycle Phase-II planner.
///
/// plan_cycle() takes the cycle's scene and target EPCs (sorted,
/// deduplicated — CycleReport::scene / targets order), diffs them against
/// the previous cycle's state, applies the deltas (or rebuilds past the
/// churn threshold), and returns a Schedule byte-identical to
/// GreedyCoverScheduler::plan() over a fresh BitmaskIndex of the same
/// scene — including the naive worst-case guard and covered_union in the
/// scene's EPC-sorted ordering.
class IncrementalPlanner {
 public:
  /// `churn_threshold`: rebuild from scratch when (arrivals + departures +
  /// target flips) / scene size exceeds it.  0 rebuilds every cycle with
  /// any delta; ≥ 1 effectively never rebuilds.  `pool` (not owned, may
  /// be null) shards full rebuilds across its executors, one contiguous
  /// pointer range of tries per task built into a task-local arena and
  /// spliced back in order — the resulting plans are byte-identical to a
  /// pool-less planner's at any thread count.
  explicit IncrementalPlanner(InventoryCostModel cost_model,
                              double churn_threshold = 0.15,
                              util::TaskPool* pool = nullptr);

  IncrementalPlanner(const IncrementalPlanner&) = delete;
  IncrementalPlanner& operator=(const IncrementalPlanner&) = delete;

  /// Plans one cycle.  `scene` and `targets` must be EPC-sorted,
  /// deduplicated and non-empty, all scene EPCs the same length (throws
  /// std::invalid_argument otherwise, mirroring BitmaskIndex /
  /// GreedyCoverScheduler).  Target EPCs not present in the scene are
  /// ignored, exactly like BitmaskIndex::bitmap_of; if no target is in
  /// the scene, throws like GreedyCoverScheduler::plan.
  Schedule plan_cycle(const std::vector<util::Epc>& scene,
                      const std::vector<util::Epc>& targets);

  const IncrementalPlannerStats& stats() const noexcept { return stats_; }
  const InventoryCostModel& cost_model() const noexcept { return cost_model_; }
  double churn_threshold() const noexcept { return churn_threshold_; }

 private:
  static constexpr std::uint32_t kNone = ~std::uint32_t{0};

  /// One side of a branch node: either an edge (targets live below) or a
  /// counted blob of non-target tags with no materialized structure.
  struct Side {
    std::uint32_t edge = kNone;
    std::uint32_t blob = 0;  ///< Tag count below when edge == kNone.
  };

  /// A branch node on a target path: the scene genuinely diverges at EPC
  /// bit (p + depth) here.
  struct Node {
    std::uint16_t depth = 0;
    std::uint8_t parent_side = 0;
    std::uint32_t parent_edge = kNone;
    Side side[2];
  };

  /// One candidate row: a maximal run of mask lengths [d, bot] with
  /// constant coverage in trie p.  `bot` is implicit (the child node's
  /// depth, or L - p for a terminal).  Coverage is represented by its
  /// cardinality plus the covered-target slot list; full coverage is only
  /// re-materialized for the handful of selected rows.
  struct Edge {
    std::uint16_t p = 0;
    std::uint16_t d = 0;  ///< Mask length: parent node depth + 1 (root: 1).
    std::uint8_t parent_side = 0;
    std::uint32_t parent_node = kNone;  ///< kNone: this is the trie root edge.
    std::uint32_t child_node = kNone;   ///< kNone: terminal (suffix class).
    std::uint32_t count = 0;            ///< |coverage| over the scene.
    std::uint32_t min_slot = kNone;     ///< Min-EPC covered target (tie key).
    std::vector<std::uint32_t> targets;  ///< Covered target slots, unsorted.
    bool alive = false;
  };

  /// Per-pointer skeleton root: exactly one of root_edge / root_node is
  /// set while targets exist; with none, the whole scene is one blob.
  /// Tags that diverge from a root edge at bit p itself are untracked
  /// (implicit count n_present - root subtree) until a target appears on
  /// their side.
  struct Trie {
    std::uint32_t root_edge = kNone;
    std::uint32_t root_node = kNone;
  };

  /// Scratch coverage for target-path expansion and selected-row
  /// materialization: dense words plus the shrinking nonzero-word list.
  /// Words outside `active` are always zero, so the array stays exact.
  struct Scratch {
    std::vector<std::uint64_t> words;
    std::vector<std::uint32_t> active;
    std::size_t count = 0;
    /// Column pointers of the current materialize() pass (scratch-local so
    /// parallel rebuild tasks never share it).
    std::vector<const std::uint64_t*> col_ptrs;
  };

  /// The edge/node pools of one trie forest.  The member arena_ holds the
  /// live structure; parallel rebuild tasks each build their pointer range
  /// into a task-local Arena (free lists stay empty — the add path never
  /// frees) which splice_arena() appends with index offsets.  Plans are
  /// invariant to the pool layout: the greedy heap orders by (gain, key)
  /// with a key unique per live edge, so pop order never depends on edge
  /// indices.
  struct Arena {
    std::vector<Edge> edges;
    std::vector<Node> nodes;
    std::vector<std::uint32_t> free_edges;
    std::vector<std::uint32_t> free_nodes;
    std::size_t live_edges = 0;
  };

  // ------------------------------------------------------- slot registry
  bool epc_bit(std::uint32_t slot, std::size_t bit) const noexcept {
    return ((packed_[slot * packed_words_ + bit / 64] >> (63 - bit % 64)) &
            1u) != 0;
  }
  /// Per-slot membership column for EPC bit `bit` == `value`; vacant
  /// slots are zero in both columns.  Slot s lives at word s/64, bit s%64.
  const std::uint64_t* column(std::size_t bit, bool value) const noexcept {
    const auto& cols = value ? cols_one_ : cols_zero_;
    return cols.data() + bit * cap_words_;
  }
  std::uint32_t alloc_slot(const util::Epc& epc);
  void release_slot(std::uint32_t slot);
  /// Grows slot capacity (re-laying out the per-bit columns) so at least
  /// `min_slots` slots exist.  Capacity is always a multiple of 64.
  void ensure_capacity(std::size_t min_slots);

  // --------------------------------------------------------- trie deltas
  void tag_arrived(std::uint32_t slot);
  void tag_departed(std::uint32_t slot);
  void target_added(std::uint32_t slot);
  void target_removed(std::uint32_t slot);
  void arrive_in_trie(std::size_t p, std::uint32_t slot);
  void depart_in_trie(std::size_t p, std::uint32_t slot);
  /// Adds target `slot` to trie `p`, building into `a` (arena_ for delta
  /// updates; a task-local arena during parallel rebuild — tries_[p]'s
  /// roots then hold a-local indices until splice_arena() remaps them).
  void add_target_in_trie(Arena& a, Scratch& s, std::size_t p,
                          std::uint32_t slot);
  void remove_target_in_trie(std::size_t p, std::uint32_t slot);
  /// Splits edge `e` at divergence depth `j` (a new branch node), placing
  /// `slot` as a size-1 blob on the far side.  The top part keeps the row
  /// identity; `e`'s count is NOT touched (the caller's descent does it).
  void split_edge(std::size_t p, std::uint32_t e, std::size_t j,
                  std::uint32_t slot);
  /// Expands target `slot`'s path below `(node, side)` out of the blob
  /// there (or below the trie root when node == kNone), creating the edge
  /// chain of branch points down to its terminal suffix class.
  void expand_target_path(Arena& a, Scratch& s, std::size_t p,
                          std::uint32_t node, int side, std::uint32_t slot);
  /// Frees the whole structure strictly below edge `e` (collapse to blob).
  void free_below(std::uint32_t e);
  std::size_t edge_bot(const Edge& e) const noexcept;
  void refresh_min_slot(Edge& e) const;
  /// Appends `a`'s pools to arena_, remapping every cross-pool index (and
  /// the trie roots of [p_begin, p_end)) by the splice offsets.
  /// Precondition: a's free lists are empty (rebuild never frees).
  void splice_arena(Arena&& a, std::size_t p_begin, std::size_t p_end);

  std::uint32_t alloc_edge(Arena& a);
  std::uint32_t alloc_node(Arena& a);
  void free_edge(std::uint32_t e);
  void free_node(std::uint32_t n);

  // ------------------------------------------------------------ coverage
  /// ANDs column `col` into the scratch coverage over its active words,
  /// dropping (and zeroing) words that die and maintaining the count.
  void scratch_and_column(Scratch& s, const std::uint64_t* col) const;
  /// Materializes the coverage of mask bits [p, p+d) of `anchor`'s EPC
  /// with one fused early-zero pass over the present set.
  void materialize(Scratch& s, std::size_t p, std::size_t d,
                   std::uint32_t anchor) const;

  // ------------------------------------------------------------ planning
  Schedule run_greedy();
  Schedule naive_schedule() const;
  double cost_of(std::size_t n);
  void rebuild(const std::vector<util::Epc>& scene,
               const std::vector<std::uint8_t>& is_target);

  InventoryCostModel cost_model_;
  double churn_threshold_;
  util::TaskPool* pool_;  ///< Not owned; null = serial rebuilds.

  // Slot registry: EPCs packed row-major for fast bit access, per-bit
  // membership columns (vacant slots zero in both), and the EPC-sorted
  // slot order the Schedule's covered_union is emitted in.
  std::size_t epc_bits_ = 0;
  std::size_t packed_words_ = 0;  ///< Words per packed EPC row.
  std::size_t capacity_ = 0;      ///< Slot capacity, multiple of 64.
  std::size_t cap_words_ = 0;     ///< capacity_ / 64.
  std::size_t n_present_ = 0;
  std::vector<util::Epc> epcs_;
  std::vector<std::uint64_t> packed_;
  std::vector<std::uint64_t> cols_one_;   ///< [bit][slot-word], flattened.
  std::vector<std::uint64_t> cols_zero_;  ///< Complement columns.
  std::vector<std::uint64_t> present_;    ///< Occupied-slot bitmap words.
  std::vector<std::uint32_t> free_slots_;
  std::vector<std::uint32_t> sorted_slots_;  ///< Present slots, EPC order.
  std::vector<std::uint8_t> is_target_;
  std::vector<std::uint32_t> target_slots_;  ///< Unordered target set.

  std::vector<Trie> tries_;
  Arena arena_;

  // Reused per-cycle scratch (member so plan_cycle stays allocation-lean).
  Scratch scratch_;
  std::vector<std::uint32_t> rank_;       ///< Slot → EPC-sorted position.
  std::vector<std::uint8_t> remaining_;   ///< Per-slot uncovered flag.
  std::vector<double> cost_memo_;
  IncrementalPlannerStats stats_;
  bool built_ = false;
};

}  // namespace tagwatch::core
