#include "core/bitmask.hpp"

#include <algorithm>
#include <stdexcept>

namespace tagwatch::core {

std::string Bitmask::to_string() const {
  return "S(" + mask.to_binary_string() + ", " + std::to_string(pointer) +
         ", " + std::to_string(mask.size()) + ")";
}

BitmaskIndex::BitmaskIndex(std::vector<util::Epc> scene)
    : scene_(std::move(scene)) {
  if (scene_.empty()) throw std::invalid_argument("BitmaskIndex: empty scene");
  std::sort(scene_.begin(), scene_.end());
  scene_.erase(std::unique(scene_.begin(), scene_.end()), scene_.end());

  epc_bits_ = scene_.front().size();
  for (const auto& epc : scene_) {
    if (epc.size() != epc_bits_) {
      throw std::invalid_argument("BitmaskIndex: mixed EPC lengths");
    }
  }
  position_.reserve(scene_.size());
  for (std::size_t i = 0; i < scene_.size(); ++i) {
    position_.emplace(scene_[i], i);
  }

  ones_.assign(epc_bits_, util::IndicatorBitmap(scene_.size()));
  zeros_.assign(epc_bits_, util::IndicatorBitmap(scene_.size()));
  for (std::size_t i = 0; i < scene_.size(); ++i) {
    for (std::size_t b = 0; b < epc_bits_; ++b) {
      (scene_[i].bits().bit(b) ? ones_[b] : zeros_[b]).set(i);
    }
  }
}

util::IndicatorBitmap BitmaskIndex::bitmap_of(
    const std::vector<util::Epc>& subset) const {
  util::IndicatorBitmap out(scene_.size());
  for (const auto& epc : subset) {
    const auto it = position_.find(epc);
    if (it != position_.end()) out.set(it->second);
  }
  return out;
}

std::vector<util::Epc> BitmaskIndex::epcs_of(
    const util::IndicatorBitmap& bitmap) const {
  std::vector<util::Epc> out;
  for (std::size_t i = 0; i < bitmap.size() && i < scene_.size(); ++i) {
    if (bitmap.test(i)) out.push_back(scene_[i]);
  }
  return out;
}

std::vector<BitmaskCandidate> BitmaskIndex::candidates_for(
    const util::IndicatorBitmap& targets) const {
  if (targets.size() != scene_.size()) {
    throw std::invalid_argument("BitmaskIndex::candidates_for: bitmap size");
  }
  std::vector<BitmaskCandidate> out;
  // Merge rows with identical coverage (Fig. 10's table preprocessing):
  // keep the first bitmask seen for each distinct bitmap.
  std::unordered_map<util::IndicatorBitmap, std::size_t> seen;

  for (std::size_t t = 0; t < scene_.size(); ++t) {
    if (!targets.test(t)) continue;
    const util::Epc& anchor = scene_[t];
    for (std::size_t p = 0; p < epc_bits_; ++p) {
      util::IndicatorBitmap cover(scene_.size());
      // Start from "all tags" and narrow one bit at a time.
      for (std::size_t i = 0; i < scene_.size(); ++i) cover.set(i);
      for (std::size_t l = 1; p + l <= epc_bits_; ++l) {
        const std::size_t b = p + l - 1;
        const util::IndicatorBitmap& bitset =
            anchor.bits().bit(b) ? ones_[b] : zeros_[b];
        // cover &= bitset, via subtract of the complement:
        const util::IndicatorBitmap& complement =
            anchor.bits().bit(b) ? zeros_[b] : ones_[b];
        cover.subtract(complement);
        (void)bitset;

        if (!seen.contains(cover)) {
          BitmaskCandidate cand;
          cand.bitmask.pointer = static_cast<std::uint32_t>(p);
          cand.bitmask.mask = anchor.bits().substring(p, l);
          cand.coverage = cover;
          seen.emplace(cover, out.size());
          out.push_back(std::move(cand));
        }
        // A singleton row cannot change with a longer mask (it always
        // contains the anchor): stop extending.
        if (cover.count() <= 1) break;
      }
    }
  }
  return out;
}

}  // namespace tagwatch::core
