#include "core/bitmask.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <utility>

#include "util/simd.hpp"
#include "util/task_pool.hpp"

namespace tagwatch::core {

namespace {

/// Flat open-addressed dedupe table over coverage content hashes: linear
/// probing, power-of-two capacity, 8-byte slots of (low 32 hash bits,
/// candidate index) to keep the probe walk cache-friendly.  The caller
/// confirms every hash match with an exact word compare, so collisions can
/// cost a compare but never merge distinct coverages.
class CoverageDedupeTable {
 public:
  static constexpr std::uint32_t kEmpty = ~std::uint32_t{0};

  /// `expected_rows` sizes the table so the common case needs at most one
  /// growth; the table stays correct (just slower) on any estimate.
  explicit CoverageDedupeTable(std::size_t expected_rows) {
    std::size_t capacity = kInitialCapacity;
    while (capacity * 7 < expected_rows * 10) capacity *= 2;
    slots_.assign(capacity, {0, kEmpty});
  }

  /// First slot for `hash`; walk with next() until an empty slot or a
  /// confirmed match.  (Capacity stays below 2^32 slots, so the low 32
  /// hash bits stored in the slot determine the same position.)
  std::size_t first(std::size_t hash) const noexcept {
    return hash & (slots_.size() - 1);
  }
  std::size_t next(std::size_t pos) const noexcept {
    return (pos + 1) & (slots_.size() - 1);
  }
  bool empty_at(std::size_t pos) const noexcept {
    return slots_[pos].index == kEmpty;
  }
  bool hash_matches(std::size_t pos, std::size_t hash) const noexcept {
    return slots_[pos].hash32 == static_cast<std::uint32_t>(hash);
  }
  std::size_t index_at(std::size_t pos) const noexcept {
    return slots_[pos].index;
  }

  /// Fills the empty slot found by the probe walk and grows the table when
  /// it passes 70% load (invalidates previously returned positions).
  void insert(std::size_t pos, std::size_t hash, std::size_t index) {
    slots_[pos] = {static_cast<std::uint32_t>(hash),
                   static_cast<std::uint32_t>(index)};
    ++used_;
    if (used_ * 10 >= slots_.size() * 7) grow();
  }

 private:
  struct Slot {
    std::uint32_t hash32 = 0;
    std::uint32_t index = kEmpty;
  };

  static constexpr std::size_t kInitialCapacity = 4096;

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, {0, kEmpty});
    for (const Slot& slot : old) {
      if (slot.index == kEmpty) continue;
      std::size_t pos = first(slot.hash32);
      while (!empty_at(pos)) pos = next(pos);
      slots_[pos] = slot;
    }
  }

  std::vector<Slot> slots_;
  std::size_t used_ = 0;
};

/// See BitmaskIndex::set_test_degenerate_dedupe_hash().
bool g_degenerate_dedupe_hash = false;

}  // namespace

void BitmaskIndex::set_test_degenerate_dedupe_hash(bool enabled) noexcept {
  g_degenerate_dedupe_hash = enabled;
}

bool BitmaskIndex::test_degenerate_dedupe_hash() noexcept {
  return g_degenerate_dedupe_hash;
}

std::string Bitmask::to_string() const {
  return "S(" + mask.to_binary_string() + ", " + std::to_string(pointer) +
         ", " + std::to_string(mask.size()) + ")";
}

BitmaskIndex::BitmaskIndex(std::vector<util::Epc> scene)
    : scene_(std::move(scene)) {
  if (scene_.empty()) throw std::invalid_argument("BitmaskIndex: empty scene");
  std::sort(scene_.begin(), scene_.end());
  scene_.erase(std::unique(scene_.begin(), scene_.end()), scene_.end());

  epc_bits_ = scene_.front().size();
  for (const auto& epc : scene_) {
    if (epc.size() != epc_bits_) {
      throw std::invalid_argument("BitmaskIndex: mixed EPC lengths");
    }
  }
  position_.reserve(scene_.size());
  for (std::size_t i = 0; i < scene_.size(); ++i) {
    position_.emplace(scene_[i], i);
  }

  ones_.assign(epc_bits_, util::IndicatorBitmap(scene_.size()));
  zeros_.assign(epc_bits_, util::IndicatorBitmap(scene_.size()));
  for (std::size_t i = 0; i < scene_.size(); ++i) {
    for (std::size_t b = 0; b < epc_bits_; ++b) {
      (scene_[i].bits().bit(b) ? ones_[b] : zeros_[b]).set(i);
    }
  }
  all_ = util::IndicatorBitmap(scene_.size());
  all_.fill();
}

util::IndicatorBitmap BitmaskIndex::bitmap_of(
    const std::vector<util::Epc>& subset) const {
  util::IndicatorBitmap out(scene_.size());
  for (const auto& epc : subset) {
    const auto it = position_.find(epc);
    if (it != position_.end()) out.set(it->second);
  }
  return out;
}

std::vector<util::Epc> BitmaskIndex::epcs_of(
    const util::IndicatorBitmap& bitmap) const {
  if (bitmap.size() != scene_.size()) {
    throw std::invalid_argument("BitmaskIndex::epcs_of: bitmap size");
  }
  std::vector<util::Epc> out;
  for (std::size_t i = 0; i < scene_.size(); ++i) {
    if (bitmap.test(i)) out.push_back(scene_[i]);
  }
  return out;
}

std::vector<BitmaskCandidate> BitmaskIndex::candidates_for(
    const util::IndicatorBitmap& targets) const {
  return candidates_for(targets, nullptr);
}

std::vector<BitmaskCandidate> BitmaskIndex::candidates_for(
    const util::IndicatorBitmap& targets, util::TaskPool* pool) const {
  if (targets.size() != scene_.size()) {
    throw std::invalid_argument("BitmaskIndex::candidates_for: bitmap size");
  }
  // Target indices in ascending order — the enumeration order of the
  // reference.
  std::vector<std::size_t> target_list;
  target_list.reserve(targets.count());
  for (std::size_t t = 0; t < scene_.size(); ++t) {
    if (targets.test(t)) target_list.push_back(t);
  }

  // Serial path: one chunk covering every target is the sweep itself —
  // no merge needed.  Small target lists stay serial too: below ~2
  // targets per executor the duplicated cross-chunk probes outweigh the
  // parallelism.
  const std::size_t threads = pool != nullptr ? pool->thread_count() : 1;
  if (threads <= 1 || target_list.size() < 2 * threads) {
    std::vector<BitmaskCandidate> out;
    sweep_target_range(targets, target_list, 0, target_list.size(), out);
    return out;
  }

  // Parallel path: contiguous target chunks, one per executor, each swept
  // with chunk-local dedupe/skip state (see sweep_target_range), then a
  // serial first-wins merge in chunk order.  Every skip a chunk performs
  // implies the skipped coverage is already in that chunk's own output,
  // and the serial sweep's skips imply a prior global emission, so the
  // merged sequence is byte-identical to the serial sweep's — the same
  // rows, in the same order, at any chunk count (the determinism contract
  // the plan-equivalence tests enforce).
  const std::size_t chunks = std::min(threads, target_list.size());
  std::vector<std::vector<BitmaskCandidate>> parts(chunks);
  pool->run(chunks, [&](std::size_t k) {
    const std::size_t begin = k * target_list.size() / chunks;
    const std::size_t end = (k + 1) * target_list.size() / chunks;
    sweep_target_range(targets, target_list, begin, end, parts[k]);
  });

  std::size_t total = 0;
  for (const auto& part : parts) total += part.size();
  std::vector<BitmaskCandidate> out;
  out.reserve(total);
  // Dedupe across chunks by coverage content: hash buckets confirmed by
  // an exact compare (as in the sweep, a collision can cost a compare but
  // never merge distinct coverages).  First occurrence in chunk order
  // wins, matching the serial sweep's first-bitmask-seen rule.
  std::unordered_map<std::size_t, std::vector<std::size_t>> seen;
  seen.reserve(total);
  for (auto& part : parts) {
    for (auto& cand : part) {
      auto& bucket = seen[cand.coverage.hash()];
      bool duplicate = false;
      for (const std::size_t i : bucket) {
        if (out[i].coverage == cand.coverage) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;
      bucket.push_back(out.size());
      out.push_back(std::move(cand));
    }
  }
  return out;
}

void BitmaskIndex::sweep_target_range(const util::IndicatorBitmap& targets,
                                      const std::vector<std::size_t>& target_list,
                                      std::size_t j_begin, std::size_t j_end,
                                      std::vector<BitmaskCandidate>& out) const {
  const std::size_t words = all_.word_count();
  const std::size_t n_range = j_end - j_begin;
  // A run emits several rows (one per popcount change), so reserve past
  // one row per (target, pointer) to keep growth reallocations rare —
  // but not much past it: the buffer is large enough to come from mmap,
  // so every page reserved here is a page fault on first touch.
  out.reserve(n_range * epc_bits_ * 3);

  // Each range target's EPC packed MSB-first into 64-bit words (bit b of
  // the EPC at bit 63 - b%64 of word b/64).
  const std::size_t wpe = (epc_bits_ + 63) / 64;
  std::vector<std::uint64_t> packed(n_range * wpe, 0);
  for (std::size_t j = 0; j < n_range; ++j) {
    const util::BitString& bits = scene_[target_list[j_begin + j]].bits();
    for (std::size_t b = 0; b < epc_bits_; ++b) {
      if (bits.bit(b)) {
        packed[j * wpe + b / 64] |= std::uint64_t{1} << (63 - b % 64);
      }
    }
  }

  // max_lcp[j * epc_bits_ + p]: longest common prefix, starting at bit p,
  // between target j's EPC and any of the (up to 64 nearest) earlier
  // targets *of this range*.  A run's coverage at (p, l) is a pure
  // function of (p, l, anchor bits [p, p+l)), so when l <= max_lcp the
  // identical coverage was already swept — and probed, or skipped for the
  // same reason — by that earlier target: the probe is a guaranteed
  // duplicate.  Confining the lookback to the range keeps every skip
  // justified by this range's own output, which is what lets the parallel
  // merge reproduce the serial sweep exactly.  The window bound keeps the
  // precompute O(targets · 64 · bits); a missed prefix match only costs a
  // redundant probe, never a wrong skip.
  std::vector<std::uint8_t> max_lcp(n_range * epc_bits_, 0);
  for (std::size_t j = 1; j < n_range; ++j) {
    std::uint8_t* row = max_lcp.data() + j * epc_bits_;
    const std::uint64_t* pj = packed.data() + j * wpe;
    const std::size_t lo = j > 64 ? j - 64 : 0;
    for (std::size_t i = lo; i < j; ++i) {
      const std::uint64_t* pi = packed.data() + i * wpe;
      std::size_t mismatch = epc_bits_;  // first mismatch at or after p
      for (std::size_t p = epc_bits_; p-- > 0;) {
        const std::uint64_t diff = pj[p / 64] ^ pi[p / 64];
        if ((diff >> (63 - p % 64)) & 1u) mismatch = p;
        const std::size_t lcp = std::min<std::size_t>(mismatch - p, 255);
        if (lcp > row[p]) row[p] = static_cast<std::uint8_t>(lcp);
      }
    }
  }

  // Run scratch: the coverage words (kept fully in sync, zero words
  // included, so materialization is one bulk copy).  Each run starts in a
  // dense phase — branch-free AND over every word — and switches to a
  // sparse phase (ascending indices of the nonzero words) once the
  // popcount drops below one bit per word; the phase is a function of the
  // popcount alone, so the same coverage is always processed in the same
  // phase no matter which run reaches it.
  std::vector<std::uint64_t> w(words, 0);
  std::vector<std::size_t> active;
  active.reserve(words);
  std::size_t cnt = 0;
  bool sparse = false;
  const std::size_t sparse_below = words;
  // Raw pointers hoisted out of the hot loops: the scratch store w[i]
  // could alias any vector's data pointer, so without these the compiler
  // must re-resolve source pointers on every iteration.
  std::uint64_t* const wp = w.data();
  const std::uint64_t* const twp = targets.word_data();

  // Word indices where `targets` has bits: the |coverage ∩ targets|
  // accumulation in the dense phase only needs these.
  std::vector<std::size_t> target_words;
  for (std::size_t i = 0; i < words; ++i) {
    if (targets.word(i) != 0) target_words.push_back(i);
  }

  // Merge rows with identical coverage — first bitmask seen wins, as in
  // the reference.  The table keys on a content hash of the coverage
  // words; a hash match is confirmed by an exact compare against the
  // emitted row.
  CoverageDedupeTable seen(n_range * epc_bits_ * 4);

  // Four interleaved FNV-1a lanes over the (index, word) pairs of the
  // nonzero words, folded at the end: a pure function of the coverage
  // content (identical coverages hash identically no matter which run or
  // phase produced them — both phases visit nonzero words in ascending
  // index order), with the multiply dependency chains split so wide
  // coverages hash at memory speed.  Sparse runs hash only the active
  // words instead of the whole array.
  const auto content_hash = [&]() noexcept {
    if (g_degenerate_dedupe_hash) return std::size_t{0x5eed};
    std::uint64_t lane[4] = {14695981039346656037ull, 0x9e3779b97f4a7c15ull,
                             0xc2b2ae3d27d4eb4full, 0x165667b19e3779f9ull};
    std::size_t k = 0;
    const auto mix = [&](std::size_t idx) noexcept {
      lane[k % 4] = (lane[k % 4] ^ idx) * 1099511628211ull;
      lane[k % 4] = (lane[k % 4] ^ wp[idx]) * 1099511628211ull;
      ++k;
    };
    if (sparse) {
      for (const std::size_t idx : active) mix(idx);
    } else {
      for (std::size_t i = 0; i < words; ++i) {
        if (wp[i] != 0) mix(i);
      }
    }
    std::uint64_t h = lane[0];
    for (int n = 1; n < 4; ++n) h = (h ^ lane[n]) * 1099511628211ull;
    return static_cast<std::size_t>(h);
  };

  // Exact compare of the scratch coverage against an emitted row.  Sparse
  // phase: equal popcounts plus equal active words imply the zero words
  // match too.
  const auto same_coverage = [&](const util::IndicatorBitmap& cov) noexcept {
    if (cov.count() != cnt) return false;
    const std::uint64_t* const cw = cov.word_data();
    if (sparse) {
      for (const std::size_t idx : active) {
        if (cw[idx] != wp[idx]) return false;
      }
      return true;
    }
    for (std::size_t i = 0; i < words; ++i) {
      if (cw[i] != wp[i]) return false;
    }
    return true;
  };

  // Dedupe-probe the scratch coverage; materializes and appends a new row
  // unless an identical coverage was already emitted.
  const auto probe = [&](std::size_t t, std::size_t p, std::size_t l) {
    const std::size_t h = content_hash();
    std::size_t pos = seen.first(h);
    while (!seen.empty_at(pos)) {
      if (seen.hash_matches(pos, h) &&
          same_coverage(out[seen.index_at(pos)].coverage)) {
        return;  // duplicate coverage: keep the first bitmask seen
      }
      pos = seen.next(pos);
    }
    BitmaskCandidate cand;
    cand.bitmask.pointer = static_cast<std::uint32_t>(p);
    cand.bitmask.mask = scene_[t].bits().substring(p, l);
    // `w` only ever holds tail-masked words ANDed together and `cnt` is the
    // sweep's incrementally maintained popcount, so the trusted overloads'
    // preconditions hold.
    if (sparse) {
      cand.coverage.assign_words_sparse(scene_.size(), w.data(), active.data(),
                                        active.size(), cnt);
    } else {
      cand.coverage.assign_words(scene_.size(), w.data(), cnt);
    }
    const std::vector<std::size_t>& idxs = sparse ? active : target_words;
    cand.targets_covered =
        util::simd::gather_and_popcount(wp, twp, idxs.data(), idxs.size());
    seen.insert(pos, h, out.size());
    out.push_back(std::move(cand));
  };

  // first_probed[2p + bit]: the length-1 coverage at pointer p with that
  // bit value has been probed once — every later run reaching it again is
  // a guaranteed duplicate.
  std::vector<std::uint8_t> first_probed(2 * epc_bits_, 0);
  std::vector<std::uint8_t> anchor_bits(epc_bits_, 0);
  // Column word pointers of the current fused skip-region pass.
  std::vector<const std::uint64_t*> cols(epc_bits_, nullptr);

  for (std::size_t j = 0; j < n_range; ++j) {
    const std::size_t t = target_list[j_begin + j];
    const std::uint64_t* pj = packed.data() + j * wpe;
    for (std::size_t b = 0; b < epc_bits_; ++b) {
      anchor_bits[b] = (pj[b / 64] >> (63 - b % 64)) & 1u;
    }
    const std::uint8_t* lcp_row = max_lcp.data() + j * epc_bits_;
    // Every coverage in this target's runs contains the anchor, so the
    // run's terminal singleton is always {t}: probe it once, then skip.
    bool singleton_probed = false;
    for (std::size_t p = 0; p < epc_bits_; ++p) {
      const std::size_t max_l = epc_bits_ - p;
      const std::size_t L = std::min<std::size_t>(lcp_row[p], max_l);
      // An earlier target shares this run's entire suffix: every coverage
      // of the run (head included) is a guaranteed duplicate, so skip the
      // run without sweeping it.  (The head's first_probed flag was set
      // down the sharing chain, and a singleton cannot occur inside a
      // shared prefix — the prefix-sharing target would be in the
      // coverage.)
      if (L >= max_l) continue;

      const bool bit_p = anchor_bits[p] != 0;
      const util::IndicatorBitmap& head = bit_p ? ones_[p] : zeros_[p];
      const std::size_t head_cnt = head.count();

      // Loads the head tag set into the scratch state; only needed when a
      // head probe actually fires — extensions read the head directly.
      const auto load_head = [&] {
        cnt = head_cnt;
        sparse = cnt < sparse_below;
        const std::uint64_t* const hw = head.word_data();
        std::copy(hw, hw + words, wp);
        if (sparse) {
          active.resize(words);
          active.resize(util::simd::nonzero_indices(wp, words, active.data()));
        }
      };

      // l = 1: the coverage IS the per-bit-position tag set.
      if (head_cnt == 1) {
        if (!singleton_probed) {
          singleton_probed = true;
          load_head();
          probe(t, p, 1);
        }
        continue;  // a singleton cannot change with a longer mask
      }
      if (first_probed[2 * p + (bit_p ? 1 : 0)] == 0) {
        first_probed[2 * p + (bit_p ? 1 : 0)] = 1;
        load_head();
        probe(t, p, 1);
      }
      if (max_l < 2) continue;

      // Fused sweep through l = 2..l_end in one pass, starting from the
      // head words directly and ANDing every column of the region.  For
      // l_end == L this is the lcp skip region: no probe can fire and no
      // singleton can occur there, so per-step popcounts and phase
      // transitions are unnecessary — one popcount at the region end
      // re-establishes the phase.  For L < 2 it degenerates to the plain
      // first extension.
      const std::size_t l_end = L >= 2 ? L : 2;
      std::size_t n_cols = 0;
      for (std::size_t l = 2; l <= l_end; ++l) {
        const std::size_t b = p + l - 1;
        cols[n_cols++] =
            (anchor_bits[b] != 0 ? ones_[b] : zeros_[b]).word_data();
      }
      cnt = util::simd::fused_and_columns(wp, head.word_data(), cols.data(),
                                          n_cols, words);
      sparse = cnt < sparse_below;
      if (sparse) {
        active.resize(words);
        active.resize(util::simd::nonzero_indices(wp, words, active.data()));
      }
      if (L < 2) {
        // Normal probe logic for the first extension (l = 2).
        if (cnt != head_cnt) {
          if (cnt == 1) {
            if (!singleton_probed) {
              singleton_probed = true;
              probe(t, p, 2);
            }
            continue;  // stop extending: longer masks cover {t} as well
          }
          probe(t, p, 2);
        }
      }
      // else: l_end == L, still inside the skip region — nothing to probe
      // and cnt >= 2 is guaranteed.

      for (std::size_t l = l_end + 1; p + l <= epc_bits_; ++l) {
        const std::size_t b = p + l - 1;
        const util::IndicatorBitmap& step =
            anchor_bits[b] != 0 ? ones_[b] : zeros_[b];
        // Extend the previous (p, l-1) coverage.  Dense phase: branch-free
        // AND + popcount over every word.  Sparse phase: AND only the
        // active words, compacting out (and zeroing) the ones that drop
        // to zero.
        const std::size_t prev_cnt = cnt;
        const std::uint64_t* const sw = step.word_data();
        if (!sparse) {
          cnt = util::simd::and_inplace_popcount(wp, sw, words);
          if (cnt < sparse_below) {
            sparse = true;
            active.resize(words);
            active.resize(
                util::simd::nonzero_indices(wp, words, active.data()));
          }
        } else {
          std::size_t kept = 0;
          cnt = 0;
          for (const std::size_t idx : active) {
            const std::uint64_t v = wp[idx] & sw[idx];
            wp[idx] = v;
            if (v != 0) {
              active[kept++] = idx;
              cnt += static_cast<std::size_t>(std::popcount(v));
            }
          }
          active.resize(kept);
        }
        // Unchanged popcount within a run means the coverage is identical
        // to the previous extension's (AND only removes bits): a
        // guaranteed duplicate, no probe needed.  Probes at l <= L were
        // already handled structurally by the fused skip-region pass.
        if (cnt == prev_cnt) continue;
        if (cnt == 1) {
          if (!singleton_probed) {
            singleton_probed = true;
            probe(t, p, l);
          }
          break;  // stop extending: longer masks cover {t} as well
        }
        probe(t, p, l);
      }
    }
  }
}

std::vector<BitmaskCandidate> BitmaskIndex::candidates_for_reference(
    const util::IndicatorBitmap& targets) const {
  if (targets.size() != scene_.size()) {
    throw std::invalid_argument(
        "BitmaskIndex::candidates_for_reference: bitmap size");
  }
  std::vector<BitmaskCandidate> out;
  // Keep the first bitmask seen for each distinct coverage bitmap.
  std::unordered_map<util::IndicatorBitmap, std::size_t> seen;

  for (std::size_t t = 0; t < scene_.size(); ++t) {
    if (!targets.test(t)) continue;
    const util::Epc& anchor = scene_[t];
    for (std::size_t p = 0; p < epc_bits_; ++p) {
      util::IndicatorBitmap cover(scene_.size());
      // Rebuild from "all tags" one bit at a time and narrow by
      // subtracting the complement of each EPC-bit tag set.
      for (std::size_t i = 0; i < scene_.size(); ++i) cover.set(i);
      for (std::size_t l = 1; p + l <= epc_bits_; ++l) {
        const std::size_t b = p + l - 1;
        const util::IndicatorBitmap& complement =
            anchor.bits().bit(b) ? zeros_[b] : ones_[b];
        cover.subtract(complement);

        if (!seen.contains(cover)) {
          BitmaskCandidate cand;
          cand.bitmask.pointer = static_cast<std::uint32_t>(p);
          cand.bitmask.mask = anchor.bits().substring(p, l);
          cand.coverage = cover;
          cand.targets_covered = cover.and_count(targets);
          seen.emplace(cover, out.size());
          out.push_back(std::move(cand));
        }
        if (cover.count() <= 1) break;
      }
    }
  }
  return out;
}

}  // namespace tagwatch::core
