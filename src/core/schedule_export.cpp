#include "core/schedule_export.hpp"

#include "llrp/rospec_xml.hpp"

namespace tagwatch::core {

namespace {

std::uint8_t q_for(std::size_t covered) {
  std::uint8_t q = 0;
  while ((std::size_t{1} << q) < covered && q < 15) ++q;
  return q;
}

}  // namespace

llrp::ROSpec schedule_to_rospec(const Schedule& schedule,
                                const ScheduleExportOptions& options) {
  llrp::ROSpec spec;
  spec.id = options.rospec_id;
  spec.loops = options.loops;
  for (const auto& sel : schedule.selections) {
    llrp::AISpec ai;
    ai.antenna_indexes = options.antenna_indexes;
    ai.session = options.session;
    ai.initial_q = q_for(std::max<std::size_t>(sel.covered_total, 1));
    ai.stop = llrp::AiSpecStopTrigger::after_rounds(options.rounds_per_bitmask);
    ai.filters.push_back(llrp::C1G2Filter{gen2::MemBank::kEpc,
                                          sel.bitmask.pointer,
                                          sel.bitmask.mask});
    spec.ai_specs.push_back(std::move(ai));
  }
  return spec;
}

std::string schedule_to_xml(const Schedule& schedule,
                            const ScheduleExportOptions& options) {
  return llrp::to_xml(schedule_to_rospec(schedule, options));
}

}  // namespace tagwatch::core
