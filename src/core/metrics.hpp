// Reading-rate metrics for upper applications.
//
// Surveillance applications reason about per-tag sampling rates ("is this
// tag being read often enough to track it?").  IrrMonitor maintains a
// sliding-window count of readings per tag and reports instantaneous IRRs,
// the quantity all of the paper's evaluation figures are built on.
#pragma once

#include <deque>
#include <unordered_map>
#include <vector>

#include "rf/measurement.hpp"
#include "util/epc.hpp"
#include "util/sim_time.hpp"

namespace tagwatch::core {

/// Sliding-window individual-reading-rate monitor.
class IrrMonitor {
 public:
  /// `window`: averaging horizon for the rate estimate.
  explicit IrrMonitor(util::SimDuration window = util::sec(10));

  /// Records one reading (any phase).
  void record(const rf::TagReading& reading);

  /// Readings of `epc` within [now − window, now] divided by the window,
  /// in Hz.  Unknown tags report 0.
  double irr_hz(const util::Epc& epc, util::SimTime now) const;

  /// Number of readings of `epc` currently inside the window.
  std::size_t count_in_window(const util::Epc& epc, util::SimTime now) const;

  /// Per-tag IRR snapshot, sorted by descending rate.
  std::vector<std::pair<util::Epc, double>> snapshot(util::SimTime now) const;

  /// Tags with any reading in the window.
  std::size_t active_tags(util::SimTime now) const;

  /// Drops per-tag state for tags whose newest reading predates the
  /// window at `now` (memory reclamation for long-running deployments).
  std::size_t prune(util::SimTime now);

  util::SimDuration window() const noexcept { return window_; }

 private:
  /// Removes timestamps older than now − window from one tag's deque.
  void trim(std::deque<util::SimTime>& times, util::SimTime now) const;

  util::SimDuration window_;
  std::unordered_map<util::Epc, std::deque<util::SimTime>> readings_;
};

}  // namespace tagwatch::core
