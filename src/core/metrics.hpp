// Reading-rate metrics for upper applications.
//
// Surveillance applications reason about per-tag sampling rates ("is this
// tag being read often enough to track it?").  IrrMonitor maintains a
// sliding-window count of readings per tag and reports instantaneous IRRs,
// the quantity all of the paper's evaluation figures are built on.
#pragma once

#include <deque>
#include <unordered_map>
#include <vector>

#include "core/pipeline.hpp"
#include "core/resilience.hpp"
#include "gen2/reader.hpp"
#include "rf/measurement.hpp"
#include "util/epc.hpp"
#include "util/sim_time.hpp"

namespace tagwatch::core {

/// Sliding-window individual-reading-rate monitor.
class IrrMonitor {
 public:
  /// `window`: averaging horizon for the rate estimate.
  explicit IrrMonitor(util::SimDuration window = util::sec(10));

  /// Records one reading (any phase).
  void record(const rf::TagReading& reading);

  /// Readings of `epc` within [now − window, now] divided by the window,
  /// in Hz.  Unknown tags report 0.
  double irr_hz(const util::Epc& epc, util::SimTime now) const;

  /// Number of readings of `epc` currently inside the window.
  std::size_t count_in_window(const util::Epc& epc, util::SimTime now) const;

  /// Per-tag IRR snapshot, sorted by descending rate.
  std::vector<std::pair<util::Epc, double>> snapshot(util::SimTime now) const;

  /// Tags with any reading in the window.
  std::size_t active_tags(util::SimTime now) const;

  /// Drops per-tag state for tags whose newest reading predates the
  /// window at `now` (memory reclamation for long-running deployments).
  std::size_t prune(util::SimTime now);

  util::SimDuration window() const noexcept { return window_; }

 private:
  /// Removes timestamps older than now − window from one tag's deque.
  void trim(std::deque<util::SimTime>& times, util::SimTime now) const;

  util::SimDuration window_;
  std::unordered_map<util::Epc, std::deque<util::SimTime>> readings_;
};

/// One cycle's contribution to the pipeline metrics.
struct CycleMetrics {
  std::size_t cycle_index = 0;
  std::uint64_t phase1_readings = 0;
  std::uint64_t phase2_readings = 0;
  std::size_t scene = 0;
  std::size_t targets = 0;
  bool read_all_fallback = false;
  bool degraded_mode = false;          ///< Ran in the degraded read-all state.
  std::uint64_t execute_failures = 0;  ///< Errored executes this cycle.
  std::uint64_t retries = 0;           ///< Re-issued executes this cycle.
};

/// Aggregate view returned by PipelineMetrics::snapshot().
struct PipelineMetricsSnapshot {
  std::uint64_t cycles = 0;
  std::uint64_t read_all_cycles = 0;
  std::uint64_t degraded_cycles = 0;
  std::uint64_t phase1_readings = 0;
  std::uint64_t phase2_readings = 0;
  /// Cumulative controller health (faults, retries, backoff, degraded-mode
  /// transitions) as of the last finished cycle.
  HealthMetrics health;
  /// Gen2 slot accounting summed over every cycle's ExecutionReports.
  gen2::RoundStats slot_totals;
  double mean_scene = 0.0;
  double mean_targets = 0.0;
  /// Mean inter-phase gap over cycles that reported one, in milliseconds.
  double mean_interphase_gap_ms = 0.0;
  /// Per-cycle breakdown, in cycle order.
  std::vector<CycleMetrics> per_cycle;
  /// Per-sink delivery accounting of the observed pipeline (empty unless
  /// observe() was called).  Every sink sees every reading, so each sink's
  /// delivered + dropped equals phase1_readings + phase2_readings.
  std::vector<SinkStats> sinks;

  std::uint64_t readings_total() const noexcept {
    return phase1_readings + phase2_readings;
  }
};

/// A metrics sink: aggregates per-cycle reading counts, round/slot stats
/// from the cycle's ExecutionReports, and — when bound with observe() —
/// the pipeline's own per-sink dispatch accounting, exposing one
/// snapshot() for tools and benches.
class PipelineMetrics final : public ReadingSink {
 public:
  std::string_view name() const override { return "metrics"; }

  bool on_reading(const rf::TagReading& reading,
                  const ReadingContext& context) override;
  void on_cycle_end(const CycleReport& report) override;

  /// Binds the pipeline whose per-sink stats snapshots embed.  `pipeline`
  /// must outlive this sink.
  void observe(const ReadingPipeline& pipeline) { pipeline_ = &pipeline; }

  PipelineMetricsSnapshot snapshot() const;

 private:
  const ReadingPipeline* pipeline_ = nullptr;
  std::uint64_t phase1_readings_ = 0;
  std::uint64_t phase2_readings_ = 0;
  std::uint64_t read_all_cycles_ = 0;
  std::uint64_t degraded_cycles_ = 0;
  HealthMetrics health_;
  gen2::RoundStats slot_totals_;
  double scene_sum_ = 0.0;
  double target_sum_ = 0.0;
  double gap_ms_sum_ = 0.0;
  std::uint64_t gap_cycles_ = 0;
  std::vector<CycleMetrics> per_cycle_;
  CycleMetrics current_;
};

}  // namespace tagwatch::core
