// Select bitmasks and the candidate index table (paper §5.2–5.3, Fig. 10).
//
// A bitmask S(m, p, l) selects every tag whose EPC bits [p, p+l) equal m.
// The search space of useful candidates is the n'·L(L+1)/2 masks anchored
// at substrings of the n' target EPCs; each is paired with an indicator
// bitmap over the scene (bit i set ⇔ tag i covered).  Enumeration uses an
// incremental-AND sweep: for a fixed target and pointer, extending the mask
// by one bit intersects the coverage with the per-bit-position tag sets,
// so the whole table costs O(n'·L²) word-ANDs instead of re-matching EPCs.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "util/bitstring.hpp"
#include "util/epc.hpp"
#include "util/indicator_bitmap.hpp"

namespace tagwatch::util {
class TaskPool;
}

namespace tagwatch::core {

/// One Gen2 Select bitmask over the EPC bank.
struct Bitmask {
  std::uint32_t pointer = 0;
  util::BitString mask;

  bool covers(const util::Epc& epc) const { return epc.matches(pointer, mask); }

  /// Renders as the paper's S(mask, pointer, length) notation.
  std::string to_string() const;

  friend bool operator==(const Bitmask&, const Bitmask&) = default;
};

/// A candidate bitmask with its scene coverage.
struct BitmaskCandidate {
  Bitmask bitmask;
  util::IndicatorBitmap coverage;  ///< Over the index's scene ordering.
  /// |coverage ∩ targets| for the target set the table was built against —
  /// the numerator of the first-round greedy gain, precomputed here so the
  /// lazy scheduler can seed its heap without rescanning every coverage.
  std::size_t targets_covered = 0;
};

/// The pre-built indexed table over the tags in the scene.
///
/// Construction fixes the scene (all current tags, target or not, ordered
/// by EPC as in Fig. 10); candidates_for() enumerates the deduplicated
/// candidate rows for a given target subset.
class BitmaskIndex {
 public:
  /// Builds the index over `scene` (deduplicated, then sorted by EPC).
  /// All EPCs must have the same bit length.
  explicit BitmaskIndex(std::vector<util::Epc> scene);

  const std::vector<util::Epc>& scene() const noexcept { return scene_; }
  std::size_t scene_size() const noexcept { return scene_.size(); }
  std::size_t epc_bits() const noexcept { return epc_bits_; }

  /// Indicator bitmap with bits set for each EPC of `subset` that is in the
  /// scene (unknown EPCs are ignored).
  util::IndicatorBitmap bitmap_of(const std::vector<util::Epc>& subset) const;

  /// EPCs corresponding to the set bits of `bitmap`, whose size must match
  /// the scene (throws std::invalid_argument otherwise, like
  /// candidates_for).
  std::vector<util::Epc> epcs_of(const util::IndicatorBitmap& bitmap) const;

  /// Enumerates candidate bitmasks anchored at the EPCs of `targets`
  /// (rows covering at least one target; identical-coverage rows merged,
  /// keeping the first bitmask seen — Fig. 10's table preprocessing).
  /// For each (target, pointer) the sweep stops once coverage collapses to
  /// a single tag: longer masks have identical coverage.
  ///
  /// Large-scene fast path: each (target, pointer) run word-copies the
  /// per-bit-position tag set of its first mask bit and extends the mask
  /// one bit at a time with an AND over only the still-nonzero coverage
  /// words (the active set shrinks as coverage narrows).  Rows are
  /// deduplicated via a 64-bit content hash in a flat open-addressed
  /// table (hash match → exact word compare, so collisions cannot merge
  /// distinct rows); extensions that provably reproduce an already-probed
  /// coverage — unchanged popcount within a run, a repeated singleton, a
  /// repeated first extension — skip the probe outright.  Total cost is
  /// O(n'·L·(n/64 + L·a)) word operations for n' targets, L EPC bits,
  /// n tags, and a the mean active-word count (≤ n/64, ~min(n/64, |V|)).
  std::vector<BitmaskCandidate> candidates_for(
      const util::IndicatorBitmap& targets) const;

  /// Parallel candidates_for(): shards the per-target sweep into one
  /// contiguous target chunk per pool executor, each swept with
  /// chunk-local dedupe/skip state, then merges the chunk outputs
  /// serially in chunk order (first coverage seen wins).  The output —
  /// rows, order, bitmasks, counts — is byte-identical to the serial
  /// overload at any thread count; a null pool (or a single-executor
  /// pool) degenerates to the serial sweep.
  std::vector<BitmaskCandidate> candidates_for(
      const util::IndicatorBitmap& targets, util::TaskPool* pool) const;

  /// Reference implementation of candidates_for(): rebuilds every coverage
  /// bitmap bit-by-bit from "all tags".  Kept as the oracle for the
  /// differential tests; output (order included) is identical to the fast
  /// path.
  std::vector<BitmaskCandidate> candidates_for_reference(
      const util::IndicatorBitmap& targets) const;

  /// Test-only: while enabled, every candidates_for() dedupe probe hashes
  /// to the same constant, so every row lands in one collision chain and
  /// dedupe correctness rests entirely on the exact word compare that
  /// confirms each hash hit.  Differential tests flip this on to prove a
  /// hash collision can never merge two distinct coverages (the guard a
  /// hash-only table would silently lack).  Not thread-safe; never enable
  /// outside tests.
  static void set_test_degenerate_dedupe_hash(bool enabled) noexcept;
  static bool test_degenerate_dedupe_hash() noexcept;

 private:
  /// The candidate sweep over targets [j_begin, j_end) of `target_list`
  /// (ascending scene indices), appending rows to `out`.  All skip state —
  /// the max_lcp lookback window, first-probe flags, and the dedupe table
  /// — is local to the range, so every skipped probe's coverage is
  /// guaranteed to be in `out` already; that property is what makes the
  /// parallel chunk merge reproduce the serial sweep exactly.
  void sweep_target_range(const util::IndicatorBitmap& targets,
                          const std::vector<std::size_t>& target_list,
                          std::size_t j_begin, std::size_t j_end,
                          std::vector<BitmaskCandidate>& out) const;

  std::vector<util::Epc> scene_;
  std::unordered_map<util::Epc, std::size_t> position_;
  std::size_t epc_bits_ = 0;
  /// ones_[b]: tags whose EPC bit b is 1; zeros_[b]: complement.
  std::vector<util::IndicatorBitmap> ones_;
  std::vector<util::IndicatorBitmap> zeros_;
  /// All scene bits set; the word-copy seed of every candidate run.
  util::IndicatorBitmap all_;
};

}  // namespace tagwatch::core
