// Motion detectors over tag readings (paper §7.1's four compared methods).
//
//   Phase-MoG   — Gaussian-mixture immobility over RF phase (Tagwatch)
//   Phase-diff  — naive: compare each phase with the previous one
//   RSS-MoG     — the mixture model applied to RSSI instead of phase
//   RSS-diff    — naive differencing on RSSI
//
// Phase (and RSSI, through multipath) is a function of the antenna and the
// frequency channel, so all detectors keep independent state per
// (antenna, channel) pair and only ever compare readings within a pair.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <utility>

#include "core/immobility.hpp"
#include "rf/measurement.hpp"

namespace tagwatch::core {

/// Which detection method to use.
enum class DetectorKind {
  kPhaseMog,
  kPhaseDiff,
  kRssMog,
  kRssDiff,
  /// Fusion extensions (beyond the paper's four): combine the phase-MoG
  /// and RSS-MoG verdicts per reading.
  kHybridAnd,  ///< Moving only if BOTH flag motion (suppresses multipath FPs).
  kHybridOr,   ///< Moving if EITHER flags motion (maximum sensitivity).
};

/// How MoG model state is keyed.  Phase is physically incomparable across
/// antennas and frequency channels, so the default keeps independent
/// models per (antenna, channel); pooling exists to quantify exactly how
/// much that separation matters (bench_ablation_gmm).
struct MogKeying {
  bool per_antenna = true;
  bool per_channel = true;
};

/// Unified tuning for all detector kinds.
struct DetectorConfig {
  /// Mixture parameters for the MoG detectors (phase scale).
  ImmobilityConfig phase_mog = {};
  /// Mixture parameters for RSS-MoG (dB scale).
  ImmobilityConfig rss_mog = ImmobilityConfig::for_rss();
  /// Motion threshold for Phase-diff (radians of minimum distance).
  double phase_diff_threshold_rad = 0.3;
  /// Motion threshold for RSS-diff (dB).
  double rss_diff_threshold_db = 2.0;
  /// Model-bank keying for the MoG detectors.
  MogKeying keying = {};
};

/// Per-tag motion detector: consumes that tag's readings, reports verdicts.
class MotionDetector {
 public:
  virtual ~MotionDetector() = default;

  /// Feeds one reading of this detector's tag; returns the verdict for it
  /// and updates internal state.
  virtual MotionVerdict update(const rf::TagReading& reading) = 0;

  /// Verdict for a hypothetical reading without updating state.
  virtual MotionVerdict classify(const rf::TagReading& reading) const = 0;
};

/// Creates a detector of the given kind.
std::unique_ptr<MotionDetector> make_detector(
    DetectorKind kind, const DetectorConfig& config = {});

/// MoG detector (phase or RSS): one ImmobilityModel per (antenna, channel)
/// under the default keying.
class MogDetector final : public MotionDetector {
 public:
  /// `use_phase` selects the observed scalar and distance metric.
  MogDetector(bool use_phase, ImmobilityConfig config, MogKeying keying = {});

  MotionVerdict update(const rf::TagReading& reading) override;
  MotionVerdict classify(const rf::TagReading& reading) const override;

  /// Model bank access for diagnostics/tests.
  const ImmobilityModel* model_for(rf::AntennaId antenna,
                                   std::size_t channel) const;
  std::size_t model_count() const noexcept { return models_.size(); }

 private:
  using Key = std::pair<rf::AntennaId, std::size_t>;
  Key key_of(const rf::TagReading& reading) const {
    return {keying_.per_antenna ? reading.antenna : rf::AntennaId{0},
            keying_.per_channel ? reading.channel : std::size_t{0}};
  }
  double value_of(const rf::TagReading& reading) const {
    return use_phase_ ? reading.phase_rad : reading.rssi_dbm;
  }

  bool use_phase_;
  ImmobilityConfig config_;
  MogKeying keying_;
  std::map<Key, ImmobilityModel> models_;
};

/// Naive differencing detector: motion iff the value changed by more than a
/// threshold since the previous reading on the same (antenna, channel).
class DiffDetector final : public MotionDetector {
 public:
  DiffDetector(bool use_phase, double threshold);

  MotionVerdict update(const rf::TagReading& reading) override;
  MotionVerdict classify(const rf::TagReading& reading) const override;

 private:
  using Key = std::pair<rf::AntennaId, std::size_t>;
  double value_of(const rf::TagReading& reading) const {
    return use_phase_ ? reading.phase_rad : reading.rssi_dbm;
  }
  std::optional<MotionVerdict> verdict_if_seen(const rf::TagReading& r) const;

  bool use_phase_;
  double threshold_;
  std::map<Key, double> last_value_;
};

/// Fusion of the phase-MoG and RSS-MoG verdicts (extension detectors).
class HybridDetector final : public MotionDetector {
 public:
  /// `require_both`: true = AND fusion, false = OR fusion.
  HybridDetector(bool require_both, const DetectorConfig& config);

  MotionVerdict update(const rf::TagReading& reading) override;
  MotionVerdict classify(const rf::TagReading& reading) const override;

 private:
  MotionVerdict fuse(MotionVerdict phase, MotionVerdict rss) const;

  bool require_both_;
  MogDetector phase_;
  MogDetector rss_;
};

}  // namespace tagwatch::core
