// The reading delivery pipeline: composable consumers of tag readings.
//
// Fig. 5 shows every reading from both phases flowing upward to several
// consumers at once — the application, the history database, the assessor's
// immobility-model training, telemetry.  ReadingPipeline makes that fan-out
// explicit: an ordered list of ReadingSinks, each with its own delivery,
// drop, and dispatch-latency accounting, so observability is no longer
// interleaved with the controller's control flow.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "rf/measurement.hpp"
#include "util/wall_clock.hpp"

namespace tagwatch::core {

struct CycleReport;  // core/tagwatch.hpp
class HistoryDatabase;
class MotionAssessor;
class ParallelAssessor;

/// Which controller phase produced a reading.
enum class ReadPhase {
  kPhase1,  ///< Inventory-everything assessment phase.
  kPhase2,  ///< Selective (or fallback read-all) intensive phase.
};

/// Delivery metadata accompanying every reading.
struct ReadingContext {
  std::size_t cycle_index = 0;
  ReadPhase phase = ReadPhase::kPhase1;
  /// Which reader produced the reading (index into the fleet's reader
  /// list; 0 for single-reader deployments).  Sinks and the pipeline's
  /// accounting attribute per source, so one slow zone shows up as that
  /// zone, not as an aggregate.
  std::size_t source_id = 0;
  /// True when the reading retired an entry of the fleet's re-cover queue:
  /// a tag orphaned by a Down reader, now re-covered by a survivor's
  /// expanded zone.  Accounted per sink in SinkStats::recovered.
  bool recovered = false;
};

/// One consumer of the reading stream.
class ReadingSink {
 public:
  virtual ~ReadingSink() = default;

  /// Stable identifier; unique within a pipeline (set_sink replaces by it).
  virtual std::string_view name() const = 0;

  /// Handles one reading.  Return false to count it as dropped by this
  /// sink (delivery continues to the remaining sinks either way).
  virtual bool on_reading(const rf::TagReading& reading,
                          const ReadingContext& context) = 0;

  /// End-of-cycle notification with the finished report (schedule, slot
  /// totals, fallback flag...).  Default: ignore.
  virtual void on_cycle_end(const CycleReport& report) { (void)report; }
};

/// Per-(sink, source) delivery accounting.  Single-reader pipelines only
/// ever populate source 0, so their stats() snapshot looks exactly as it
/// did before sources existed; fleet pipelines get one row per sink per
/// reader that actually dispatched through it.
struct SinkStats {
  std::string name;
  /// The ReadingContext::source_id this row accounts for.
  std::size_t source_id = 0;
  std::uint64_t delivered = 0;  ///< Readings the sink accepted.
  std::uint64_t dropped = 0;    ///< Readings the sink declined or threw on.
  /// Delivered readings flagged ReadingContext::recovered — orphans of a
  /// Down reader re-covered through zone takeover.
  std::uint64_t recovered = 0;
  /// Calls on which the sink threw — on_reading throws (each also counted
  /// in `dropped`) plus on_cycle_end throws.  A throwing sink is isolated:
  /// delivery continues to the remaining sinks and the cycle never crashes.
  std::uint64_t exceptions = 0;
  /// Timed delivery calls: one per dispatch(), one per non-empty
  /// dispatch_batch().  dispatch_seconds accrues one clock-pair per batch,
  /// so `dispatch_seconds / batches` is the exact per-call cost under a
  /// FakeWallClock.
  std::uint64_t batches = 0;
  double dispatch_seconds = 0;  ///< Host wall time spent inside the sink.

  /// Mean per-reading dispatch cost in microseconds (0 when idle).
  double mean_dispatch_us() const {
    const std::uint64_t n = delivered + dropped;
    return n == 0 ? 0.0 : dispatch_seconds * 1e6 / static_cast<double>(n);
  }
};

/// Ordered fan-out of the reading stream to sinks, with accounting.
class ReadingPipeline {
 public:
  /// Appends a sink (delivery order == registration order).
  void add_sink(std::shared_ptr<ReadingSink> sink);

  /// Host clock used for per-sink dispatch timing.  Defaults to the
  /// steady_clock-backed system clock; tests inject a FakeWallClock to
  /// make latency accounting exact.  `clock` must outlive the pipeline.
  void set_wall_clock(util::WallClock& clock) { clock_ = &clock; }

  /// Replaces the sink with the same name, or appends if none matches.
  void set_sink(std::shared_ptr<ReadingSink> sink);

  /// Removes the named sink; returns whether one was found.
  bool remove_sink(std::string_view name);

  /// The named sink, or nullptr.
  ReadingSink* find(std::string_view name);

  std::size_t sink_count() const noexcept { return entries_.size(); }

  /// Delivers one reading to every sink, timing each dispatch.
  void dispatch(const rf::TagReading& reading, const ReadingContext& context);

  /// Delivers a whole batch sink-by-sink (sink A sees the full batch
  /// before sink B sees any of it — sinks are independent consumers, so
  /// per-reading interleaving was never observable).  Accounting is exact
  /// per reading (delivered/dropped/exceptions identical to dispatch()
  /// called in a loop), but the wall clock is read once per sink per
  /// batch instead of once per sink per reading.
  void dispatch_batch(const std::vector<rf::TagReading>& readings,
                      const ReadingContext& context);

  /// Forwards the cycle-end notification to every sink.
  void end_cycle(const CycleReport& report);

  /// Readings pushed through the pipeline so far (all phases).
  std::uint64_t dispatched_total() const noexcept { return dispatched_; }

  /// Accounting snapshot: one row per (sink, source) pair, sinks in
  /// delivery order, sources in first-seen order within each sink.
  /// Single-source pipelines get exactly one row per sink (source 0).
  std::vector<SinkStats> stats() const;

 private:
  struct Entry {
    std::shared_ptr<ReadingSink> sink;
    /// Per-source accounting rows; [0] always exists (cycle-end exception
    /// accounting and single-reader dispatch land there).
    std::vector<SinkStats> stats;
  };
  /// The entry's accounting row for `source_id`, created on first use.
  static SinkStats& stats_slot(Entry& entry, std::size_t source_id);

  std::vector<Entry> entries_;
  std::uint64_t dispatched_ = 0;
  util::WallClock* clock_ = &util::WallClock::system();
};

// ------------------------------------------------------- built-in sinks

/// Application delivery: wraps a plain callback (the classic listener).
class CallbackSink final : public ReadingSink {
 public:
  using Callback = std::function<void(const rf::TagReading&)>;

  CallbackSink(std::string name, Callback callback)
      : name_(std::move(name)), callback_(std::move(callback)) {}

  std::string_view name() const override { return name_; }
  bool on_reading(const rf::TagReading& reading,
                  const ReadingContext& context) override {
    (void)context;
    if (!callback_) return false;
    callback_(reading);
    return true;
  }

 private:
  std::string name_;
  Callback callback_;
};

/// Records every reading into a HistoryDatabase.
class HistorySink final : public ReadingSink {
 public:
  /// `history` must outlive the sink.
  explicit HistorySink(HistoryDatabase& history) : history_(&history) {}

  std::string_view name() const override { return "history"; }
  bool on_reading(const rf::TagReading& reading,
                  const ReadingContext& context) override;

 private:
  HistoryDatabase* history_;
};

/// Feeds every reading to the motion assessor (immobility-model training —
/// Phase II readings continuing to train is what makes state transitions
/// converge within about one cycle, §4.3).
class AssessorSink final : public ReadingSink {
 public:
  /// `assessor` must outlive the sink.
  explicit AssessorSink(MotionAssessor& assessor) : assessor_(&assessor) {}

  std::string_view name() const override { return "assessor"; }
  bool on_reading(const rf::TagReading& reading,
                  const ReadingContext& context) override;

 private:
  MotionAssessor* assessor_;
};

/// AssessorSink for the sharded ingestion engine.  Shares the name
/// "assessor" so the two are interchangeable within a pipeline.
class ParallelAssessorSink final : public ReadingSink {
 public:
  /// `assessor` must outlive the sink.
  explicit ParallelAssessorSink(ParallelAssessor& assessor)
      : assessor_(&assessor) {}

  std::string_view name() const override { return "assessor"; }
  bool on_reading(const rf::TagReading& reading,
                  const ReadingContext& context) override;

 private:
  ParallelAssessor* assessor_;
};

}  // namespace tagwatch::core
