#include "core/assessor.hpp"

#include <algorithm>

namespace tagwatch::core {

MotionAssessor::MotionAssessor(AssessorConfig config)
    : config_(std::move(config)) {}

void MotionAssessor::begin_window() {
  window_open_ = true;
  ++window_epoch_;
  last_window_.clear();
}

void MotionAssessor::ingest(const rf::TagReading& reading) {
  auto it = tags_.find(reading.epc);
  if (it == tags_.end()) {
    TagState state;
    state.detector = make_detector(config_.detector_kind, config_.detector);
    it = tags_.emplace(reading.epc, std::move(state)).first;
  }
  TagState& state = it->second;
  const MotionVerdict verdict = state.detector->update(reading);
  state.last_seen = reading.timestamp;
  ++state.total_readings;
  if (window_open_) {
    if (state.window_epoch != window_epoch_) {
      // First reading of this tag in the current window: its counters
      // still belong to an earlier window — reset them now instead of
      // walking every tracked tag in begin_window().
      state.window_epoch = window_epoch_;
      state.window_readings = 0;
      state.moving_votes = 0;
    }
    ++state.window_readings;
    if (verdict == MotionVerdict::kMoving) ++state.moving_votes;
  }
}

const std::vector<TagAssessment>& MotionAssessor::assess(util::SimTime now) {
  if (!window_open_) {
    // The window is already closed: replay its cached result instead of
    // re-applying forget_after eviction at a later `now` (which would
    // silently drop tags the window did assess).
    return last_window_;
  }
  window_open_ = false;
  std::vector<TagAssessment> out;
  for (auto it = tags_.begin(); it != tags_.end();) {
    TagState& state = it->second;
    if (now - state.last_seen > config_.forget_after) {
      // §4.3: a tag gone for a long while has its models removed; if it
      // returns it is treated as new (and initially presumed mobile).
      it = tags_.erase(it);
      continue;
    }
    // Counters from an older epoch mean the tag was not read this window.
    if (state.window_epoch == window_epoch_ && state.window_readings > 0) {
      TagAssessment a;
      a.epc = it->first;
      a.window_readings = state.window_readings;
      a.moving_votes = state.moving_votes;
      a.mobile = state.moving_votes >= config_.mobile_vote_threshold;
      out.push_back(std::move(a));
    }
    ++it;
  }
  std::sort(out.begin(), out.end(),
            [](const TagAssessment& a, const TagAssessment& b) {
              return a.epc < b.epc;
            });
  last_window_ = std::move(out);
  return last_window_;
}

std::vector<util::Epc> MotionAssessor::mobile_tags(util::SimTime now) {
  std::vector<util::Epc> mobile;
  for (const TagAssessment& a : assess(now)) {
    if (a.mobile) mobile.push_back(a.epc);
  }
  return mobile;
}

const MotionDetector* MotionAssessor::detector_for(const util::Epc& epc) const {
  const auto it = tags_.find(epc);
  return it == tags_.end() ? nullptr : it->second.detector.get();
}

}  // namespace tagwatch::core
