#include "core/detectors.hpp"

#include <cmath>

#include "util/circular.hpp"

namespace tagwatch::core {

std::unique_ptr<MotionDetector> make_detector(DetectorKind kind,
                                              const DetectorConfig& config) {
  switch (kind) {
    case DetectorKind::kPhaseMog:
      return std::make_unique<MogDetector>(true, config.phase_mog,
                                           config.keying);
    case DetectorKind::kRssMog:
      return std::make_unique<MogDetector>(false, config.rss_mog,
                                           config.keying);
    case DetectorKind::kPhaseDiff:
      return std::make_unique<DiffDetector>(true,
                                            config.phase_diff_threshold_rad);
    case DetectorKind::kRssDiff:
      return std::make_unique<DiffDetector>(false,
                                            config.rss_diff_threshold_db);
    case DetectorKind::kHybridAnd:
      return std::make_unique<HybridDetector>(true, config);
    case DetectorKind::kHybridOr:
      return std::make_unique<HybridDetector>(false, config);
  }
  return nullptr;  // unreachable
}

MogDetector::MogDetector(bool use_phase, ImmobilityConfig config,
                         MogKeying keying)
    : use_phase_(use_phase), config_(config), keying_(keying) {}

MotionVerdict MogDetector::update(const rf::TagReading& reading) {
  const Key key = key_of(reading);
  auto it = models_.find(key);
  if (it == models_.end()) {
    it = models_
             .emplace(key, ImmobilityModel(config_, use_phase_
                                                        ? Metric::kCircular
                                                        : Metric::kLinear))
             .first;
  }
  return it->second.observe(value_of(reading));
}

MotionVerdict MogDetector::classify(const rf::TagReading& reading) const {
  const auto it = models_.find(key_of(reading));
  // An unseen (antenna, channel) pair has no immobility evidence: per the
  // paper's initialization, an unexplained reading counts as motion.
  if (it == models_.end()) return MotionVerdict::kMoving;
  return it->second.classify(value_of(reading));
}

const ImmobilityModel* MogDetector::model_for(rf::AntennaId antenna,
                                              std::size_t channel) const {
  const auto it = models_.find(
      Key{keying_.per_antenna ? antenna : rf::AntennaId{0},
          keying_.per_channel ? channel : std::size_t{0}});
  return it == models_.end() ? nullptr : &it->second;
}

HybridDetector::HybridDetector(bool require_both, const DetectorConfig& config)
    : require_both_(require_both),
      phase_(true, config.phase_mog, config.keying),
      rss_(false, config.rss_mog, config.keying) {}

MotionVerdict HybridDetector::fuse(MotionVerdict phase,
                                   MotionVerdict rss) const {
  const bool phase_moving = phase == MotionVerdict::kMoving;
  const bool rss_moving = rss == MotionVerdict::kMoving;
  const bool moving =
      require_both_ ? (phase_moving && rss_moving)
                    : (phase_moving || rss_moving);
  return moving ? MotionVerdict::kMoving : MotionVerdict::kStationary;
}

MotionVerdict HybridDetector::update(const rf::TagReading& reading) {
  return fuse(phase_.update(reading), rss_.update(reading));
}

MotionVerdict HybridDetector::classify(const rf::TagReading& reading) const {
  return fuse(phase_.classify(reading), rss_.classify(reading));
}

DiffDetector::DiffDetector(bool use_phase, double threshold)
    : use_phase_(use_phase), threshold_(threshold) {}

std::optional<MotionVerdict> DiffDetector::verdict_if_seen(
    const rf::TagReading& r) const {
  const auto it = last_value_.find(Key{r.antenna, r.channel});
  if (it == last_value_.end()) return std::nullopt;
  const double v = value_of(r);
  const double dist = use_phase_ ? util::circular_distance(v, it->second)
                                 : std::abs(v - it->second);
  return dist > threshold_ ? MotionVerdict::kMoving
                           : MotionVerdict::kStationary;
}

MotionVerdict DiffDetector::update(const rf::TagReading& reading) {
  // First reading on a pair: no baseline yet — treat as moving, like the
  // MoG detectors treat unexplained readings.
  const MotionVerdict verdict =
      verdict_if_seen(reading).value_or(MotionVerdict::kMoving);
  last_value_[Key{reading.antenna, reading.channel}] = value_of(reading);
  return verdict;
}

MotionVerdict DiffDetector::classify(const rf::TagReading& reading) const {
  return verdict_if_seen(reading).value_or(MotionVerdict::kMoving);
}

}  // namespace tagwatch::core
