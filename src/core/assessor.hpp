// Phase I manager: per-tag motion assessment over inventory readings.
//
// Owns one MotionDetector per tag, routes readings to it, and aggregates
// per-assessment-window verdicts into the mobile-tag set handed to Phase II.
// Also implements the §4.3 "reading exceptions" policy: state for tags that
// leave the field for a long time is dropped; unknown tags are admitted (and
// initially presumed mobile) on their first reading.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/detectors.hpp"
#include "rf/measurement.hpp"
#include "util/epc.hpp"
#include "util/sim_time.hpp"

namespace tagwatch::core {

/// Assessor tuning.
struct AssessorConfig {
  DetectorKind detector_kind = DetectorKind::kPhaseMog;
  DetectorConfig detector = {};
  /// Tags unseen for longer than this are forgotten (models removed).
  util::SimDuration forget_after = util::sec(60);
  /// A tag is assessed mobile when at least this many of its readings in
  /// the window were flagged as motion.  1 maximizes sensitivity (a single
  /// unexplained phase on any antenna/channel marks the tag).
  std::size_t mobile_vote_threshold = 1;
};

/// Per-tag assessment summary for one window.
struct TagAssessment {
  util::Epc epc;
  std::size_t window_readings = 0;
  std::size_t moving_votes = 0;
  bool mobile = false;
};

/// Phase-I motion assessor.
class MotionAssessor {
 public:
  explicit MotionAssessor(AssessorConfig config = {});

  /// Opens an assessment window; call at the start of each Phase I.
  /// O(1): vote counters are invalidated by bumping the window epoch, not
  /// by walking every tracked tag.
  void begin_window();

  /// Feeds one reading (from either phase): updates that tag's detector.
  /// Readings between begin_window/assess contribute votes; readings at
  /// other times only train the models (§4.3 "when do we learn").
  void ingest(const rf::TagReading& reading);

  /// Ends the window: returns per-tag assessments for tags read in the
  /// window and evicts tags unseen since `now - forget_after`.
  ///
  /// Idempotent per window: the first call after begin_window() computes
  /// the result (and applies eviction once); later calls — including via
  /// mobile_tags() — return the cached result unchanged, regardless of
  /// `now`, until the next begin_window().  The reference stays valid
  /// until the next begin_window()/assess() call.
  const std::vector<TagAssessment>& assess(util::SimTime now);

  /// EPCs assessed mobile in the last window (convenience over assess()).
  std::vector<util::Epc> mobile_tags(util::SimTime now);

  /// Tags currently tracked (have detector state).
  std::size_t tracked_count() const noexcept { return tags_.size(); }

  /// The detector for a tag, or nullptr (diagnostics/tests).
  const MotionDetector* detector_for(const util::Epc& epc) const;

  const AssessorConfig& config() const noexcept { return config_; }

 private:
  struct TagState {
    std::unique_ptr<MotionDetector> detector;
    util::SimTime last_seen{0};
    /// Which window the counters below belong to; counters from an older
    /// epoch are stale and reset lazily on the next in-window reading.
    std::uint64_t window_epoch = 0;
    std::size_t window_readings = 0;
    std::size_t moving_votes = 0;
    std::size_t total_readings = 0;
  };

  AssessorConfig config_;
  bool window_open_ = false;
  /// Current window identity; 0 means "no window opened yet" (TagState
  /// epochs start at 0 and the first open window is epoch 1).
  std::uint64_t window_epoch_ = 0;
  /// Result of the last closed window, replayed by repeat assess() calls.
  std::vector<TagAssessment> last_window_;
  std::unordered_map<util::Epc, TagState> tags_;
};

}  // namespace tagwatch::core
