// Conversion of a Phase II schedule into LLRP artifacts.
//
// On hardware, Tagwatch configures the reader by sending a ROSpec whose
// AISpecs carry one C1G2 filter per selected bitmask (paper §6, Fig. 11).
// These helpers materialize exactly that document from a Schedule, both
// for the simulated reader and for operators inspecting what would be
// sent to a physical one.
#pragma once

#include <string>

#include "core/setcover.hpp"
#include "llrp/rospec.hpp"

namespace tagwatch::core {

/// Options controlling the generated ROSpec.
struct ScheduleExportOptions {
  std::uint32_t rospec_id = 1;
  gen2::Session session = gen2::Session::kS1;
  /// Antenna indexes each AISpec cycles through (empty: all antennas).
  std::vector<std::size_t> antenna_indexes;
  /// Inventory rounds per bitmask per pass.
  std::size_t rounds_per_bitmask = 1;
  /// How many times the reader loops the AISpec list.
  std::size_t loops = 1;
};

/// Builds a ROSpec with one AISpec (carrying one C1G2 filter) per selected
/// bitmask — Fig. 11's "multiple AISpecs" layout, the paper's default.
llrp::ROSpec schedule_to_rospec(const Schedule& schedule,
                                const ScheduleExportOptions& options = {});

/// Convenience: the ROSpec serialized as XML (Fig. 11's document form).
std::string schedule_to_xml(const Schedule& schedule,
                            const ScheduleExportOptions& options = {});

}  // namespace tagwatch::core
