#include "gen2/tag_runtime.hpp"

namespace tagwatch::gen2 {

bool select_matches(const SelectCommand& cmd, const util::Epc& epc) {
  if (cmd.bank != MemBank::kEpc) return false;
  return epc.matches(cmd.pointer, cmd.mask);
}

namespace {

/// Generic "assert"/"deassert"/"toggle" applied to either the SL flag or a
/// session inventoried flag, per the Select target.
enum class FlagOp { kAssert, kDeassert, kToggle, kNone };

void apply_op(FlagOp op, const SelectCommand& cmd, TagFlags& flags,
              util::SimTime now, const SessionTiming& timing) {
  if (op == FlagOp::kNone) return;
  if (cmd.target == SelectTarget::kSl) {
    switch (op) {
      case FlagOp::kAssert: flags.sl = true; break;
      case FlagOp::kDeassert: flags.sl = false; break;
      case FlagOp::kToggle: flags.sl = !flags.sl; break;
      case FlagOp::kNone: break;
    }
    return;
  }
  const auto session = static_cast<Session>(cmd.target);
  switch (op) {
    // For session targets the spec reads "assert" as set-to-A and
    // "deassert" as set-to-B.
    case FlagOp::kAssert:
      flags.set_session_flag(session, InvFlag::kA, now, timing);
      break;
    case FlagOp::kDeassert:
      flags.set_session_flag(session, InvFlag::kB, now, timing);
      break;
    case FlagOp::kToggle:
      flags.toggle_session_flag(session, now, timing);
      break;
    case FlagOp::kNone: break;
  }
}

}  // namespace

void apply_select_action(const SelectCommand& cmd, bool matched,
                         TagFlags& flags) {
  // Legacy immortal-flag form: with persistent() timing, set_session_flag
  // never stamps a decay deadline, so this is exactly the old semantics.
  apply_select_action(cmd, matched, flags, util::SimTime{0},
                      SessionTiming::persistent());
}

void apply_select_action(const SelectCommand& cmd, bool matched,
                         TagFlags& flags, util::SimTime now,
                         const SessionTiming& timing) {
  // Truncation state: a matching Select with Truncate set arms a shortened
  // reply starting right after the compared bits; any other Select disarms
  // it (per spec, truncation applies only when the *last* Select matched
  // with Truncate=1).
  if (matched && cmd.truncate) {
    flags.truncate_from = cmd.pointer + cmd.mask.size();
  } else {
    flags.truncate_from = TagFlags::kNoTruncate;
  }

  FlagOp op = FlagOp::kNone;
  switch (cmd.action) {
    case SelectAction::kAssertMatchedDeassertElse:
      op = matched ? FlagOp::kAssert : FlagOp::kDeassert;
      break;
    case SelectAction::kAssertMatchedOnly:
      op = matched ? FlagOp::kAssert : FlagOp::kNone;
      break;
    case SelectAction::kDeassertUnmatchedOnly:
      op = matched ? FlagOp::kNone : FlagOp::kDeassert;
      break;
    case SelectAction::kToggleMatched:
      op = matched ? FlagOp::kToggle : FlagOp::kNone;
      break;
    case SelectAction::kDeassertMatchedAssertElse:
      op = matched ? FlagOp::kDeassert : FlagOp::kAssert;
      break;
    case SelectAction::kDeassertMatchedOnly:
      op = matched ? FlagOp::kDeassert : FlagOp::kNone;
      break;
    case SelectAction::kAssertUnmatchedOnly:
      op = matched ? FlagOp::kNone : FlagOp::kAssert;
      break;
    case SelectAction::kToggleMatchedOnly:
      op = matched ? FlagOp::kToggle : FlagOp::kNone;
      break;
  }
  apply_op(op, cmd, flags, now, timing);
}

}  // namespace tagwatch::gen2
