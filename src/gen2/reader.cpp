#include "gen2/reader.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace tagwatch::gen2 {

namespace {

/// Sentinel slot value for collided tags: per Gen2, a tag whose counter is 0
/// and that receives QueryRep without having been acknowledged wraps its
/// counter and effectively leaves the frame until the next Query/QueryAdjust.
constexpr std::uint32_t kParkedSlot = 0x7FFF;

std::uint8_t clamp_q(double qfp) {
  return static_cast<std::uint8_t>(std::lround(std::clamp(qfp, 0.0, 15.0)));
}

}  // namespace

Gen2Reader::Gen2Reader(LinkTiming timing, ReaderConfig config,
                       sim::World& world, const rf::RfChannel& channel,
                       std::vector<rf::Antenna> antennas, util::Rng rng,
                       std::shared_ptr<TagFlagField> flags)
    : timing_(std::move(timing)), config_(config), world_(&world),
      channel_(&channel), antennas_(std::move(antennas)), rng_(rng),
      flags_(std::move(flags)) {
  if (antennas_.empty()) {
    throw std::invalid_argument("Gen2Reader: need at least one antenna");
  }
  if (config_.q_step <= 0.0) {
    throw std::invalid_argument("Gen2Reader: q_step must be positive");
  }
  if (!flags_) {
    flags_ = std::make_shared<TagFlagField>(config_.session_timing);
  }
  next_hop_ = world_->now() + config_.channel_dwell;
}

bool Gen2Reader::in_field(const sim::SimTag& tag, util::SimTime t) const {
  if (!sim::World::is_present(tag, t)) return false;
  if (!config_.coverage) return true;
  return config_.coverage->contains(tag.motion->position(t));
}

void Gen2Reader::transmit_select(const SelectCommand& cmd) {
  hop_if_due();
  world_->advance(timing_.select(cmd.mask.size()));
  flags_->sync(*world_);
  const util::SimTime t = world_->now();
  const SessionTiming& st = flags_->timing();
  const std::vector<sim::SimTag>& tags = world_->tags();
  for (std::size_t i = 0; i < tags.size(); ++i) {
    const sim::SimTag& tag = tags[i];
    if (!in_field(tag, t)) continue;
    apply_select_action(cmd, select_matches(cmd, tag.epc), flags_->at(i), t,
                        st);
  }
}

const TagFlags* Gen2Reader::find_flags(const util::Epc& epc) {
  return flags_->find(*world_, epc);
}

void Gen2Reader::set_active_antenna(std::size_t index) {
  if (index >= antennas_.size()) {
    throw std::out_of_range("Gen2Reader::set_active_antenna");
  }
  antenna_idx_ = index;
}

std::vector<Gen2Reader::Participant> Gen2Reader::gather_participants(
    const QueryCommand& query) {
  flags_->sync(*world_);
  std::vector<Participant> parts;
  const util::SimTime t = world_->now();
  const std::vector<sim::SimTag>& tags = world_->tags();
  for (std::size_t i = 0; i < tags.size(); ++i) {
    const sim::SimTag& tag = tags[i];
    if (!in_field(tag, t)) continue;
    const TagFlags& f = flags_->at(i);
    if (query.sel == QuerySel::kSl && !f.sl) continue;
    if (query.sel == QuerySel::kNotSl && f.sl) continue;
    if (f.session_flag_at(query.session, t) != query.target) continue;
    // Temporarily blocked/occluded tags miss the whole round (§4.3).
    if (tag.block_probability > 0.0 && rng_.chance(tag.block_probability)) {
      continue;
    }
    parts.push_back({i, 0, false});
  }
  return parts;
}

void Gen2Reader::redraw_slots(std::vector<Participant>& parts,
                              std::uint32_t frame_size) {
  for (auto& p : parts) {
    p.slot = rng_.below(std::max<std::uint32_t>(frame_size, 1));
    p.parked = false;
  }
}

void Gen2Reader::hop_if_due() {
  while (world_->now() >= next_hop_) {
    ++hop_counter_;
    channel_idx_ = channel_->plan().hop_channel(hop_counter_);
    next_hop_ += config_.channel_dwell;
  }
}

std::size_t Gen2Reader::reply_bits(const util::Epc& epc,
                                   const TagFlags& flags) const {
  // Truncated replies (Select Truncate=1): the tag transmits only the EPC
  // bits following the matched mask; the reader reconstructs the rest from
  // the mask it sent.
  if (flags.truncate_from != TagFlags::kNoTruncate &&
      flags.truncate_from < epc.size()) {
    return epc.size() - flags.truncate_from;
  }
  return epc.size();
}

rf::TagReading Gen2Reader::make_reading(std::size_t tag_index) {
  const sim::SimTag& tag = world_->tags()[tag_index];
  const util::SimTime t = world_->now();
  const rf::RfObservation obs = channel_->observe(
      antennas_[antenna_idx_], tag.motion->position(t), tag.tag_phase_rad,
      world_->reflectors_at(t), channel_idx_, rng_);
  return rf::TagReading{tag.epc, antennas_[antenna_idx_].id, channel_idx_,
                        obs.phase_rad, obs.rssi_dbm, t};
}

void Gen2Reader::run_binary_tree(const QueryCommand& query,
                                 const std::vector<Participant>& parts,
                                 const ReadCallback& on_read,
                                 RoundStats& stats) {
  // Capetanakis-style tree splitting: the whole population answers the
  // first slot; every collision splits the colliding set uniformly at
  // random into two subsets resolved depth-first.  Slot air times are the
  // same as for ALOHA (probe + reply windows).
  std::vector<std::vector<std::size_t>> stack;  // groups of tag indexes
  {
    std::vector<std::size_t> all;
    all.reserve(parts.size());
    for (const auto& p : parts) all.push_back(p.tag_index);
    stack.push_back(std::move(all));
  }
  while (!stack.empty() && stats.slots < config_.max_slots_per_round) {
    std::vector<std::size_t> group = std::move(stack.back());
    stack.pop_back();
    ++stats.slots;
    hop_if_due();
    if (group.empty()) {
      world_->advance(timing_.empty_slot());
      ++stats.empty_slots;
      continue;
    }
    if (group.size() == 1) {
      const std::size_t tag_index = group.front();
      const bool lost = config_.slot_error_rate > 0.0 &&
                        rng_.chance(config_.slot_error_rate);
      if (lost) {
        // Decode failure: the reader re-probes the same singleton set.
        world_->advance(timing_.collision_slot());
        ++stats.lost_slots;
        stack.push_back(std::move(group));
        continue;
      }
      TagFlags& flags = flags_->at(tag_index);
      const util::Epc& epc = world_->tags()[tag_index].epc;
      world_->advance(timing_.success_slot(reply_bits(epc, flags)));
      ++stats.success_slots;
      flags.toggle_session_flag(query.session, world_->now(),
                                flags_->timing());
      if (on_read) on_read(make_reading(tag_index));
      continue;
    }
    world_->advance(timing_.collision_slot());
    ++stats.collision_slots;
    std::vector<std::size_t> left, right;
    for (const std::size_t idx : group) {
      (rng_.chance(0.5) ? left : right).push_back(idx);
    }
    stack.push_back(std::move(right));
    stack.push_back(std::move(left));
  }
}

RoundStats Gen2Reader::run_inventory_round(const QueryCommand& query,
                                           const ReadCallback& on_read) {
  RoundStats stats;
  const util::SimTime round_start = world_->now();
  hop_if_due();

  // τ0: carrier ramp, settling, host turnaround — then the opening Query.
  world_->advance(config_.round_overhead);
  world_->advance(timing_.query());

  auto parts = gather_participants(query);

  if (config_.policy == AntiCollisionPolicy::kBinaryTree) {
    run_binary_tree(query, parts, on_read, stats);
    stats.duration = world_->now() - round_start;
    return stats;
  }

  double qfp = (config_.persist_q && persisted_qfp_)
                   ? *persisted_qfp_
                   : static_cast<double>(query.q);
  std::uint8_t q = clamp_q(qfp);
  if (config_.policy == AntiCollisionPolicy::kIdealDfsa) {
    // Oracle: frame length equals the number of competing tags.
    redraw_slots(parts, static_cast<std::uint32_t>(
                            std::max<std::size_t>(parts.size(), 1)));
  } else {
    redraw_slots(parts, 1u << q);
  }

  std::size_t slots_left_in_frame =
      (config_.policy == AntiCollisionPolicy::kIdealDfsa)
          ? std::max<std::size_t>(parts.size(), 1)
          : (std::size_t{1} << q);

  const auto remaining_active = [&parts] {
    return static_cast<std::size_t>(
        std::count_if(parts.begin(), parts.end(),
                      [](const Participant& p) { return !p.parked; }));
  };

  while (stats.slots < config_.max_slots_per_round) {
    // Round termination.
    if (parts.empty()) {
      if (config_.policy == AntiCollisionPolicy::kQAdaptive) {
        // The reader does not know the population is exhausted: it keeps
        // issuing slots, decaying Q on each empty one, until Q reaches 0 and
        // a final empty slot convinces it the round is over.
        while (qfp > 0.0 && stats.slots < config_.max_slots_per_round) {
          world_->advance(timing_.empty_slot());
          ++stats.slots;
          ++stats.empty_slots;
          qfp = std::max(0.0, qfp - config_.q_step);
        }
        world_->advance(timing_.empty_slot());
        ++stats.slots;
        ++stats.empty_slots;
      }
      break;
    }
    // FSA/Q-adaptive can deadlock if every remaining tag is parked; a frame
    // restart (new Query) un-parks them.
    if (remaining_active() == 0 || slots_left_in_frame == 0) {
      switch (config_.policy) {
        case AntiCollisionPolicy::kFixedQ:
          world_->advance(timing_.query());
          redraw_slots(parts, 1u << q);
          slots_left_in_frame = 1u << q;
          break;
        case AntiCollisionPolicy::kIdealDfsa: {
          const auto f = static_cast<std::uint32_t>(parts.size());
          world_->advance(timing_.query());
          redraw_slots(parts, std::max(f, 1u));
          slots_left_in_frame = std::max(f, 1u);
          break;
        }
        case AntiCollisionPolicy::kQAdaptive:
          world_->advance(timing_.query_adjust());
          q = clamp_q(qfp);
          redraw_slots(parts, 1u << q);
          slots_left_in_frame = config_.max_slots_per_round;  // no frame bound
          break;
        case AntiCollisionPolicy::kBinaryTree:
          break;  // handled by run_binary_tree; unreachable here
      }
      continue;
    }

    hop_if_due();

    // Identify this slot's responders.
    std::vector<std::size_t> responders;  // indexes into parts
    for (std::size_t i = 0; i < parts.size(); ++i) {
      if (!parts[i].parked && parts[i].slot == 0) responders.push_back(i);
    }

    ++stats.slots;
    --slots_left_in_frame;

    if (responders.empty()) {
      world_->advance(timing_.empty_slot());
      ++stats.empty_slots;
      if (config_.policy == AntiCollisionPolicy::kQAdaptive) {
        qfp = std::max(0.0, qfp - config_.q_step);
      }
    } else if (responders.size() == 1) {
      const std::size_t pi = responders.front();
      const bool lost = config_.slot_error_rate > 0.0 &&
                        rng_.chance(config_.slot_error_rate);
      if (lost) {
        // RN16/EPC decode failure: costs a collision-like slot; the tag saw
        // no valid ACK, so it parks like a collided tag.
        world_->advance(timing_.collision_slot());
        ++stats.lost_slots;
        parts[pi].slot = kParkedSlot;
        parts[pi].parked = true;
      } else {
        const std::size_t tag_index = parts[pi].tag_index;
        TagFlags& flags = flags_->at(tag_index);
        const util::Epc& epc = world_->tags()[tag_index].epc;
        world_->advance(timing_.success_slot(reply_bits(epc, flags)));
        ++stats.success_slots;
        // Acknowledged tag inverts its inventoried flag for this session.
        flags.toggle_session_flag(query.session, world_->now(),
                                  flags_->timing());
        if (on_read) on_read(make_reading(tag_index));
        parts.erase(parts.begin() + static_cast<std::ptrdiff_t>(pi));
      }
    } else {
      // Capture effect: the receiver may still lock onto the strongest
      // (nearest) responder and read it as if the slot were singular.
      bool captured = false;
      if (config_.capture_probability > 0.0 &&
          rng_.chance(config_.capture_probability)) {
        std::size_t strongest = responders.front();
        double best_d = std::numeric_limits<double>::infinity();
        const util::SimTime t = world_->now();
        const std::vector<sim::SimTag>& tags = world_->tags();
        for (const std::size_t pi : responders) {
          const double d = util::distance(
              antennas_[antenna_idx_].position,
              tags[parts[pi].tag_index].motion->position(t));
          if (d < best_d) {
            best_d = d;
            strongest = pi;
          }
        }
        const std::size_t tag_index = parts[strongest].tag_index;
        TagFlags& flags = flags_->at(tag_index);
        const util::Epc& epc = tags[tag_index].epc;
        world_->advance(timing_.success_slot(reply_bits(epc, flags)));
        ++stats.success_slots;
        flags.toggle_session_flag(query.session, world_->now(),
                                  flags_->timing());
        if (on_read) on_read(make_reading(tag_index));
        // The captured tag leaves; the losers park as in a plain collision.
        for (const std::size_t pi : responders) {
          if (pi == strongest) continue;
          parts[pi].slot = kParkedSlot;
          parts[pi].parked = true;
        }
        parts.erase(parts.begin() + static_cast<std::ptrdiff_t>(strongest));
        captured = true;
      }
      if (!captured) {
        world_->advance(timing_.collision_slot());
        ++stats.collision_slots;
        for (const std::size_t pi : responders) {
          parts[pi].slot = kParkedSlot;
          parts[pi].parked = true;
        }
      }
      if (config_.policy == AntiCollisionPolicy::kQAdaptive) {
        qfp = std::min(15.0, qfp + config_.q_step);
      }
    }

    // QueryRep: every un-parked, un-read tag decrements its counter.
    for (auto& p : parts) {
      if (!p.parked && p.slot > 0) --p.slot;
    }

    // Q-adaptive mid-round adjustment: when round(Qfp) drifts from Q, the
    // reader issues QueryAdjust and all arbitrating tags (parked included)
    // re-draw from the new frame.
    if (config_.policy == AntiCollisionPolicy::kQAdaptive &&
        clamp_q(qfp) != q && !parts.empty()) {
      world_->advance(timing_.query_adjust());
      q = clamp_q(qfp);
      redraw_slots(parts, 1u << q);
    }
    // Ideal DFSA restarts the frame after every success so that f always
    // equals the remaining population (§2.2's optimal scheme).
    if (config_.policy == AntiCollisionPolicy::kIdealDfsa &&
        !responders.empty() && !parts.empty()) {
      const auto f = static_cast<std::uint32_t>(parts.size());
      world_->advance(timing_.query());
      redraw_slots(parts, std::max(f, 1u));
      slots_left_in_frame = std::max(f, 1u);
    }
  }

  // Population estimate for the next round (persist_q): frames sized to
  // the count just inventoried, the way COTS AutoSet modes carry state.
  if (config_.policy == AntiCollisionPolicy::kQAdaptive) {
    persisted_qfp_ =
        std::log2(static_cast<double>(std::max<std::size_t>(
            stats.success_slots, 1)));
  }

  stats.duration = world_->now() - round_start;
  return stats;
}

}  // namespace tagwatch::gen2
