// The reader-side inventory engine: slotted-ALOHA arbitration over the
// simulated tag population, with FSA, ideal DFSA, and Q-adaptive policies.
//
// This is the substrate substituting for the ImpinJ R420: identical
// link-layer mechanics (Select/Query/QueryAdjust/QueryRep/ACK slotting,
// session flags, per-slot timing) driving a simulated clock instead of RF
// hardware.  Successful reads are materialized into TagReading records with
// phase/RSSI drawn from the RF channel model at the exact slot time.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "gen2/commands.hpp"
#include "gen2/flag_field.hpp"
#include "gen2/link_params.hpp"
#include "gen2/tag_runtime.hpp"
#include "rf/channel.hpp"
#include "rf/measurement.hpp"
#include "sim/world.hpp"
#include "util/rng.hpp"

namespace tagwatch::gen2 {

/// Anti-collision policy for an inventory round.
enum class AntiCollisionPolicy {
  kFixedQ,      ///< Framed Slotted ALOHA with a constant frame size 2^Q.
  kIdealDfsa,   ///< Oracle DFSA: frame length always equals remaining tags.
  kQAdaptive,   ///< The COTS Q algorithm (award/punish Qfp adjustment).
  kBinaryTree,  ///< Basic binary tree splitting (Capetanakis-style): each
                ///< collision splits the colliding set by a coin flip; the
                ///< TDMA baseline family the paper's §8 surveys.
};

/// Reader configuration.
struct ReaderConfig {
  AntiCollisionPolicy policy = AntiCollisionPolicy::kQAdaptive;
  /// Q-adaptive step C (Gen2 Annex D suggests 0.1–0.5).
  double q_step = 0.35;
  /// Per-round fixed overhead τ0: carrier settle, Select delivery, host
  /// turnaround and report flush.  The paper measures 19 ms on the R420.
  util::SimDuration round_overhead = util::msec(19);
  /// Probability that an otherwise-successful single reply is lost (RN16 or
  /// EPC decode error) — failure injection for robustness tests.
  double slot_error_rate = 0.0;
  /// Capture effect: probability that a collided slot still decodes the
  /// strongest responder (the tag closest to the active antenna).  Real
  /// UHF receivers capture routinely; it skews reads toward near tags.
  double capture_probability = 0.0;
  /// Frequency-hop dwell time (China band regulation ~400 ms).
  util::SimDuration channel_dwell = util::msec(400);
  /// Runaway guard: abort a round after this many slots.
  std::size_t max_slots_per_round = 200'000;
  /// Carry the adapted Qfp across rounds (COTS readers do): the next
  /// round's frame starts from the previous round's converged estimate
  /// instead of the Query's initial Q.
  bool persist_q = false;
  /// Session-flag persistence windows applied by the reader's (private)
  /// flag field.  Ignored when the reader is constructed over a shared
  /// TagFlagField, which carries its own timing.
  SessionTiming session_timing = SessionTiming::persistent();
  /// Coverage zone: when set, the reader's RF field reaches only tags
  /// whose position lies inside it — Selects and inventory rounds skip
  /// everything else.  nullopt (default) covers the whole world, the
  /// single-reader behavior.
  std::optional<sim::Zone> coverage;
};

/// Per-round outcome counters.
struct RoundStats {
  std::size_t slots = 0;
  std::size_t empty_slots = 0;
  std::size_t collision_slots = 0;
  std::size_t success_slots = 0;
  std::size_t lost_slots = 0;       ///< Injected decode failures.
  util::SimDuration duration{0};    ///< Air + overhead time of the round.
};

/// Accumulates one round's counters into a running total.
inline RoundStats& operator+=(RoundStats& total, const RoundStats& round) {
  total.slots += round.slots;
  total.empty_slots += round.empty_slots;
  total.collision_slots += round.collision_slots;
  total.success_slots += round.success_slots;
  total.lost_slots += round.lost_slots;
  total.duration += round.duration;
  return total;
}

/// Invoked for every successful tag read, in slot order.
using ReadCallback = std::function<void(const rf::TagReading&)>;

/// Simulated EPC Gen2 reader bound to a World and an RF channel model.
class Gen2Reader {
 public:
  /// The reader transmits through `antennas` (at least one).  `world` and
  /// `channel` must outlive the reader.  `flags` is the session-flag field
  /// the reader energizes: pass one shared field to several readers so
  /// they see each other's A/B flips (fleet deployments); nullptr gives
  /// the reader a private field built from config.session_timing (the
  /// classic single-reader setup).
  Gen2Reader(LinkTiming timing, ReaderConfig config, sim::World& world,
             const rf::RfChannel& channel, std::vector<rf::Antenna> antennas,
             util::Rng rng, std::shared_ptr<TagFlagField> flags = nullptr);

  /// Broadcasts a Select command: advances the clock by the command's air
  /// time and updates the flags of every tag currently in the field.
  void transmit_select(const SelectCommand& cmd);

  /// Runs one full inventory round opened by `query`, reporting each
  /// successful read through `on_read`.  Advances the simulation clock by
  /// the round's total duration (including round_overhead).
  RoundStats run_inventory_round(const QueryCommand& query,
                                 const ReadCallback& on_read);

  /// Selects the active antenna port by index into the antenna list.
  void set_active_antenna(std::size_t index);
  const rf::Antenna& active_antenna() const {
    return antennas_.at(antenna_idx_);
  }
  std::size_t antenna_count() const noexcept { return antennas_.size(); }

  /// Current frequency channel (index into the channel plan).
  std::size_t current_channel() const noexcept { return channel_idx_; }

  util::SimTime now() const noexcept { return world_->now(); }
  const rf::RfChannel& channel() const noexcept { return *channel_; }
  const LinkTiming& timing() const noexcept { return timing_; }
  const ReaderConfig& config() const noexcept { return config_; }
  sim::World& world() noexcept { return *world_; }

  /// Replaces the coverage zone (nullopt = whole world).  Zone takeover
  /// widens a fleet survivor's field at runtime; only subsequent Selects
  /// and rounds see the new footprint.
  void set_coverage(std::optional<sim::Zone> zone) {
    config_.coverage = std::move(zone);
  }

  /// Protocol flags of a tag (in the field or departed), or nullptr if the
  /// reader has never interacted with it.  Diagnostics/tests; may refresh
  /// the dense mirror against the world first.
  const TagFlags* find_flags(const util::Epc& epc);

  /// The session-flag field this reader energizes (shared or private).
  TagFlagField& flag_field() noexcept { return *flags_; }
  std::shared_ptr<TagFlagField> flag_field_ptr() const noexcept {
    return flags_;
  }

 private:
  struct Participant {
    std::size_t tag_index;                 ///< Index into world tags.
    std::uint32_t slot;                    ///< Remaining QueryReps until reply.
    bool parked = false;                   ///< Collided; waits for re-draw.
  };

  /// True when the tag is present *and* inside this reader's coverage
  /// zone at time `t` — i.e. the reader's carrier actually energizes it.
  bool in_field(const sim::SimTag& tag, util::SimTime t) const;
  /// Tags in the field whose flags satisfy the query's Sel/session/target.
  std::vector<Participant> gather_participants(const QueryCommand& query);
  /// Tree-splitting arbitration (kBinaryTree policy).
  void run_binary_tree(const QueryCommand& query,
                       const std::vector<Participant>& parts,
                       const ReadCallback& on_read, RoundStats& stats);
  void redraw_slots(std::vector<Participant>& parts, std::uint32_t frame_size);
  void hop_if_due();
  /// EPC bits a tag actually backscatters (full, or truncated per Select).
  std::size_t reply_bits(const util::Epc& epc, const TagFlags& flags) const;
  rf::TagReading make_reading(std::size_t tag_index);

  LinkTiming timing_;
  ReaderConfig config_;
  sim::World* world_;
  const rf::RfChannel* channel_;
  std::vector<rf::Antenna> antennas_;
  util::Rng rng_;
  /// The session-flag field (dense per-tag-index mirror; see
  /// gen2/flag_field.hpp).  Shared across readers in fleet deployments,
  /// private otherwise — never null.
  std::shared_ptr<TagFlagField> flags_;
  std::size_t antenna_idx_ = 0;
  std::size_t channel_idx_ = 0;
  std::size_t hop_counter_ = 0;
  util::SimTime next_hop_{0};
  /// Last round's converged Qfp (used when persist_q is set).
  std::optional<double> persisted_qfp_;
};

}  // namespace tagwatch::gen2
