#include "gen2/link_params.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tagwatch::gen2 {

namespace {

// Gen2 command payload sizes in bits (EPCglobal Gen2 §6.3.2.12).
constexpr std::size_t kQueryBits = 22;
constexpr std::size_t kQueryRepBits = 4;
constexpr std::size_t kQueryAdjustBits = 9;
constexpr std::size_t kAckBits = 18;
// Select: cmd(4) + target(3) + action(3) + membank(2) + pointer EBV(~8) +
// length(8) + truncate(1) + CRC-16(16) = 45 bits, plus the mask itself.
constexpr std::size_t kSelectFixedBits = 45;

util::SimDuration ceil_us(double us) {
  return util::SimDuration(static_cast<std::int64_t>(std::ceil(us)));
}

}  // namespace

LinkParams LinkParams::max_throughput() {
  return LinkParams{6.25, 640.0, 1, false};
}

LinkParams LinkParams::dense_reader_m4() {
  return LinkParams{25.0, 256.0, 4, true};
}

LinkParams LinkParams::paper_testbed() {
  return LinkParams{12.5, 320.0, 2, false};
}

void LinkParams::validate() const {
  if (tari_us < 6.25 || tari_us > 25.0) {
    throw std::invalid_argument("LinkParams: Tari must be in [6.25, 25] us");
  }
  if (blf_khz < 40.0 || blf_khz > 640.0) {
    throw std::invalid_argument("LinkParams: BLF must be in [40, 640] kHz");
  }
  if (miller_m != 1 && miller_m != 2 && miller_m != 4 && miller_m != 8) {
    throw std::invalid_argument("LinkParams: M must be 1, 2, 4 or 8");
  }
}

LinkTiming::LinkTiming(LinkParams params) : params_(params) {
  params_.validate();
  t_query_ = reader_bits(kQueryBits, /*full_preamble=*/true);
  t_query_rep_ = reader_bits(kQueryRepBits, false);
  t_query_adjust_ = reader_bits(kQueryAdjustBits, false);
  t_ack_ = reader_bits(kAckBits, false);
  t_rn16_ = tag_bits(16);

  // Gen2 Table 6.16: T1 = MAX(RTcal, 10·Tpri)·(1 ± tolerance); T2 in
  // [3, 20]·Tpri (we use 10); T3 is the extra reader wait before declaring
  // no reply (we use RTcal).
  const double rtcal_us = 3.0 * params_.tari_us;  // data-0 + data-1 (2·Tari)
  const double tpri_us = 1000.0 / params_.blf_khz;
  t1_ = ceil_us(std::max(rtcal_us, 10.0 * tpri_us) * 1.1);
  t2_ = ceil_us(10.0 * tpri_us);
  t3_ = ceil_us(rtcal_us);
}

util::SimDuration LinkTiming::reader_bits(std::size_t bits,
                                          bool full_preamble) const {
  // R→T PIE: data-0 = Tari, data-1 = 2·Tari; average 1.5·Tari per bit.
  const double bit_us = 1.5 * params_.tari_us;
  const double rtcal_us = 3.0 * params_.tari_us;
  const double trcal_us = 64.0 / 3.0 / (params_.blf_khz / 1000.0);  // DR=64/3
  const double delim_us = 12.5;
  // Query is preceded by the full preamble (delim + data-0 + RTcal + TRcal);
  // other commands use frame-sync (delim + data-0 + RTcal).
  const double preamble_us = delim_us + params_.tari_us + rtcal_us +
                             (full_preamble ? trcal_us : 0.0);
  return ceil_us(preamble_us + static_cast<double>(bits) * bit_us);
}

util::SimDuration LinkTiming::tag_bits(std::size_t payload_bits) const {
  // T→R: each data bit takes M cycles of the BLF clock; the preamble is
  // 6 symbols (or 22 with TRext pilot), plus a dummy terminator bit.
  const double bit_us =
      static_cast<double>(params_.miller_m) * 1000.0 / params_.blf_khz;
  const std::size_t preamble_bits = params_.trext ? 22 : 6;
  return ceil_us(static_cast<double>(preamble_bits + payload_bits + 1) *
                 bit_us);
}

util::SimDuration LinkTiming::select(std::size_t mask_bits) const noexcept {
  return reader_bits(kSelectFixedBits + mask_bits, false);
}

util::SimDuration LinkTiming::epc_reply(std::size_t epc_bits) const noexcept {
  // PC/XPC word (16) + EPC + CRC-16 (16).
  return tag_bits(16 + epc_bits + 16);
}

util::SimDuration LinkTiming::empty_slot() const noexcept {
  return query_rep() + t1() + t3();
}

util::SimDuration LinkTiming::collision_slot() const noexcept {
  return query_rep() + t1() + rn16() + t2();
}

util::SimDuration LinkTiming::success_slot(
    std::size_t epc_bits) const noexcept {
  return query_rep() + t1() + rn16() + t2() + ack() + t1() +
         epc_reply(epc_bits) + t2();
}

}  // namespace tagwatch::gen2
