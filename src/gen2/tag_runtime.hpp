// Tag-side persistent protocol state (flags) and Select evaluation.
//
// Real Gen2 tags hold an SL flag and four per-session inventoried flags in
// volatile state.  The simulator keeps them here, keyed by EPC, and applies
// Select commands exactly as the spec's match/non-match action table does.
#pragma once

#include <array>
#include <unordered_map>

#include "gen2/commands.hpp"
#include "util/epc.hpp"
#include "util/sim_time.hpp"

namespace tagwatch::gen2 {

/// Gen2 session-flag persistence windows (Gen2 Table 6.20).  A session's B
/// flag is not durable storage: S0 holds only while the tag is energized,
/// S1 decays back to A within a bounded window *regardless* of power, and
/// S2/S3 hold indefinitely while energized but only a couple of seconds
/// through a power loss.  kForever disables a window (the pre-fleet
/// simulator behavior, where flags were immortal).
struct SessionTiming {
  static constexpr util::SimDuration kForever = util::SimDuration::max();
  /// Spec bounds on the S1 window: persistence requests outside
  /// [500 ms, 5 s] are clamped into it, the way a real tag's RC-decay
  /// circuit bounds the hold time no matter what the deployment wants.
  static constexpr util::SimDuration kS1Min = util::msec(500);
  static constexpr util::SimDuration kS1Max = util::sec(5);

  /// How long S0 survives a power loss (spec: none — resets immediately).
  util::SimDuration s0_persistence = kForever;
  /// How long an S1 B flag holds after being set, powered or not.
  util::SimDuration s1_persistence = kForever;
  /// How long S2/S3 B flags survive a power loss (spec: >= 2 s nominal).
  util::SimDuration depowered_persistence = kForever;

  /// Immortal flags: the legacy simulator semantics (and a fine model for
  /// single-reader runs much shorter than any persistence window).
  static constexpr SessionTiming persistent() { return {}; }

  /// Nominal COTS tag behavior per the spec table: S0 drops at power loss,
  /// S1 decays after 2 s, S2/S3 survive 2 s of power loss.
  static constexpr SessionTiming spec_default() {
    return {util::SimDuration::zero(), util::sec(2), util::sec(2)};
  }

  /// The effective S1 window: clamped into [kS1Min, kS1Max] when finite.
  constexpr util::SimDuration s1_effective() const {
    if (s1_persistence == kForever) return kForever;
    return s1_persistence < kS1Min   ? kS1Min
           : s1_persistence > kS1Max ? kS1Max
                                     : s1_persistence;
  }
};

/// The flag state a single tag maintains across inventory rounds.
///
/// Each session's inventoried flag carries a decay deadline: reading the
/// flag through session_flag_at() applies S1's bounded persistence lazily
/// (a B flag whose deadline passed reads as A), so no per-tag timer wheel
/// is needed.  The deadline is stamped by set_session_flag() from a
/// SessionTiming; the raw accessors remain for code on the legacy immortal
/// semantics.
struct TagFlags {
  bool sl = false;
  std::array<InvFlag, 4> inventoried{InvFlag::kA, InvFlag::kA, InvFlag::kA,
                                     InvFlag::kA};
  /// Per-session instant at which a B flag reverts to A (kNever: no decay).
  static constexpr util::SimTime kNever = util::SimTime::max();
  std::array<util::SimTime, 4> decay_at{kNever, kNever, kNever, kNever};
  /// Truncation (Gen2 §6.3.2.12.1.1): when the last matching Select had its
  /// Truncate bit set, the tag backscatters only the EPC bits *after* the
  /// mask (the reader knows the masked prefix already), shortening the
  /// reply.  Holds the first EPC bit index to transmit, or npos when the
  /// full EPC is replied.
  static constexpr std::size_t kNoTruncate = static_cast<std::size_t>(-1);
  std::size_t truncate_from = kNoTruncate;

  InvFlag& session_flag(Session s) {
    return inventoried[static_cast<std::size_t>(s)];
  }
  InvFlag session_flag(Session s) const {
    return inventoried[static_cast<std::size_t>(s)];
  }

  /// The flag value a tag would present at time `now`: B decays to A once
  /// its deadline passes (S1's bounded persistence, evaluated lazily).
  InvFlag session_flag_at(Session s, util::SimTime now) const {
    const auto i = static_cast<std::size_t>(s);
    if (inventoried[i] == InvFlag::kB && now >= decay_at[i]) {
      return InvFlag::kA;
    }
    return inventoried[i];
  }

  /// Writes a session flag at time `now`, stamping the decay deadline per
  /// `timing` (only S1 decays while powered; A never decays).
  void set_session_flag(Session s, InvFlag v, util::SimTime now,
                        const SessionTiming& timing) {
    const auto i = static_cast<std::size_t>(s);
    inventoried[i] = v;
    decay_at[i] = kNever;
    if (v == InvFlag::kB && s == Session::kS1) {
      const util::SimDuration window = timing.s1_effective();
      if (window != SessionTiming::kForever) decay_at[i] = now + window;
    }
  }

  /// Inverts a session flag the way an acknowledged tag does, honoring any
  /// decay that already happened (a decayed B toggles A→B, not B→A).
  void toggle_session_flag(Session s, util::SimTime now,
                           const SessionTiming& timing) {
    const InvFlag cur = session_flag_at(s, now);
    set_session_flag(s, cur == InvFlag::kA ? InvFlag::kB : InvFlag::kA, now,
                     timing);
  }

  /// Applies a de-energized interval [departed_at, now): S0 flags reset
  /// once their (spec: zero-length) hold expires, S2/S3 flags reset when
  /// the outage outlasts the depowered window, and S1 relies on the decay
  /// deadline it already carries (its window ticks the same powered or
  /// not).  A zero-length gap is a no-op — reindex stashes that never
  /// de-energized the tag pass through unchanged.
  void power_cycle(util::SimTime departed_at, util::SimTime now,
                   const SessionTiming& timing) {
    if (now <= departed_at) return;
    const util::SimDuration gap = now - departed_at;
    const auto reset = [this](Session s) {
      inventoried[static_cast<std::size_t>(s)] = InvFlag::kA;
      decay_at[static_cast<std::size_t>(s)] = kNever;
    };
    if (timing.s0_persistence != SessionTiming::kForever &&
        gap > timing.s0_persistence) {
      reset(Session::kS0);
    }
    if (timing.depowered_persistence != SessionTiming::kForever &&
        gap > timing.depowered_persistence) {
      reset(Session::kS2);
      reset(Session::kS3);
    }
  }
};

/// Evaluates whether `epc` matches a Select's (bank, pointer, mask) rule.
/// Only the EPC bank is modeled; Select on other banks never matches.
bool select_matches(const SelectCommand& cmd, const util::Epc& epc);

/// Applies a Select command's action to one tag's flags, given whether the
/// tag matched the mask (Gen2 Table 6.30 semantics for both SL and session
/// targets).  Legacy immortal-flag form: no decay deadline is stamped.
void apply_select_action(const SelectCommand& cmd, bool matched,
                         TagFlags& flags);

/// Timed form: session-flag writes go through set_session_flag() so S1
/// writes pick up their decay deadline from `timing`.
void apply_select_action(const SelectCommand& cmd, bool matched,
                         TagFlags& flags, util::SimTime now,
                         const SessionTiming& timing);

/// Flag store for the whole population.  Operator[] default-constructs the
/// power-up state (SL deasserted, all sessions A), which is what a tag
/// entering the field presents.  Retained as the differential oracle the
/// dense TagFlagField mirror is validated against.
class FlagStore {
 public:
  TagFlags& operator[](const util::Epc& epc) { return flags_[epc]; }

  const TagFlags* find(const util::Epc& epc) const {
    const auto it = flags_.find(epc);
    return it == flags_.end() ? nullptr : &it->second;
  }

  /// Broadcasts a Select to every tag in `epcs`.
  template <typename EpcRange>
  void broadcast_select(const SelectCommand& cmd, const EpcRange& epcs) {
    for (const auto& epc : epcs) {
      apply_select_action(cmd, select_matches(cmd, epc), (*this)[epc]);
    }
  }

  /// Timed broadcast: stamps decay deadlines per `timing`.
  template <typename EpcRange>
  void broadcast_select(const SelectCommand& cmd, const EpcRange& epcs,
                        util::SimTime now, const SessionTiming& timing) {
    for (const auto& epc : epcs) {
      apply_select_action(cmd, select_matches(cmd, epc), (*this)[epc], now,
                          timing);
    }
  }

  /// Drops state for tags that left the field.
  void forget(const util::Epc& epc) { flags_.erase(epc); }
  void clear() { flags_.clear(); }
  std::size_t size() const noexcept { return flags_.size(); }

 private:
  std::unordered_map<util::Epc, TagFlags> flags_;
};

}  // namespace tagwatch::gen2
