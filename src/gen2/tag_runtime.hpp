// Tag-side persistent protocol state (flags) and Select evaluation.
//
// Real Gen2 tags hold an SL flag and four per-session inventoried flags in
// volatile state.  The simulator keeps them here, keyed by EPC, and applies
// Select commands exactly as the spec's match/non-match action table does.
#pragma once

#include <array>
#include <unordered_map>

#include "gen2/commands.hpp"
#include "util/epc.hpp"

namespace tagwatch::gen2 {

/// The flag state a single tag maintains across inventory rounds.
struct TagFlags {
  bool sl = false;
  std::array<InvFlag, 4> inventoried{InvFlag::kA, InvFlag::kA, InvFlag::kA,
                                     InvFlag::kA};
  /// Truncation (Gen2 §6.3.2.12.1.1): when the last matching Select had its
  /// Truncate bit set, the tag backscatters only the EPC bits *after* the
  /// mask (the reader knows the masked prefix already), shortening the
  /// reply.  Holds the first EPC bit index to transmit, or npos when the
  /// full EPC is replied.
  static constexpr std::size_t kNoTruncate = static_cast<std::size_t>(-1);
  std::size_t truncate_from = kNoTruncate;

  InvFlag& session_flag(Session s) {
    return inventoried[static_cast<std::size_t>(s)];
  }
  InvFlag session_flag(Session s) const {
    return inventoried[static_cast<std::size_t>(s)];
  }
};

/// Evaluates whether `epc` matches a Select's (bank, pointer, mask) rule.
/// Only the EPC bank is modeled; Select on other banks never matches.
bool select_matches(const SelectCommand& cmd, const util::Epc& epc);

/// Applies a Select command's action to one tag's flags, given whether the
/// tag matched the mask (Gen2 Table 6.30 semantics for both SL and session
/// targets).
void apply_select_action(const SelectCommand& cmd, bool matched,
                         TagFlags& flags);

/// Flag store for the whole population.  Operator[] default-constructs the
/// power-up state (SL deasserted, all sessions A), which is what a tag
/// entering the field presents.
class FlagStore {
 public:
  TagFlags& operator[](const util::Epc& epc) { return flags_[epc]; }

  const TagFlags* find(const util::Epc& epc) const {
    const auto it = flags_.find(epc);
    return it == flags_.end() ? nullptr : &it->second;
  }

  /// Broadcasts a Select to every tag in `epcs`.
  template <typename EpcRange>
  void broadcast_select(const SelectCommand& cmd, const EpcRange& epcs) {
    for (const auto& epc : epcs) {
      apply_select_action(cmd, select_matches(cmd, epc), (*this)[epc]);
    }
  }

  /// Drops state for tags that left the field.
  void forget(const util::Epc& epc) { flags_.erase(epc); }
  void clear() { flags_.clear(); }
  std::size_t size() const noexcept { return flags_.size(); }

 private:
  std::unordered_map<util::Epc, TagFlags> flags_;
};

}  // namespace tagwatch::gen2
