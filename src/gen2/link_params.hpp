// EPC Gen2 air-interface timing.
//
// All slot and command durations are derived from the Gen2 link parameters
// (Tari, backscatter link frequency, Miller factor, TRext), exactly as the
// air protocol defines them.  This is what makes the simulator's
// inventory-cost curve C(n) = τ0 + n·e·τ̄·ln n emerge from first principles
// rather than being baked in: τ̄ is the mix of the slot durations computed
// here, and τ0 is the per-round overhead (CW settling, Select transmission,
// host turnaround) configured on the reader.
#pragma once

#include "util/sim_time.hpp"

namespace tagwatch::gen2 {

/// Reader→tag and tag→reader modulation parameters (Gen2 §6.3).
struct LinkParams {
  double tari_us = 6.25;     ///< Reference interval: data-0 symbol length.
  double blf_khz = 640.0;    ///< Backscatter link frequency (tag clock).
  int miller_m = 1;          ///< Cycles per symbol: 1 (FM0), 2, 4, or 8.
  bool trext = false;        ///< Extended tag preamble (pilot tone).

  /// ImpinJ "max throughput" style profile (fast links, dense-reader off).
  static LinkParams max_throughput();

  /// ImpinJ "dense reader M=4" style profile (robust, slower).
  static LinkParams dense_reader_m4();

  /// Miller-2 mid-rate profile whose emergent inventory cost lands in the
  /// paper's fitted range (τ0 ≈ 19 ms, effective τ̄ ≈ 0.2 ms): the default
  /// for benches that reproduce the paper's absolute IRR numbers.
  static LinkParams paper_testbed();

  /// Validates ranges; throws std::invalid_argument on nonsense.
  void validate() const;
};

/// All protocol durations derived from LinkParams (Gen2 §6.3.1.2–6.3.1.6).
/// Values are microsecond SimDurations, rounded up so time never undercounts.
class LinkTiming {
 public:
  explicit LinkTiming(LinkParams params);

  const LinkParams& params() const noexcept { return params_; }

  /// Duration of one reader command on air, including preamble/frame-sync.
  util::SimDuration query() const noexcept { return t_query_; }
  util::SimDuration query_rep() const noexcept { return t_query_rep_; }
  util::SimDuration query_adjust() const noexcept { return t_query_adjust_; }
  util::SimDuration ack() const noexcept { return t_ack_; }

  /// Select duration depends on the transmitted mask length (bits).
  util::SimDuration select(std::size_t mask_bits) const noexcept;

  /// Tag replies.
  util::SimDuration rn16() const noexcept { return t_rn16_; }
  util::SimDuration epc_reply(std::size_t epc_bits) const noexcept;

  /// Link turnaround times (Gen2 Table 6.16).
  util::SimDuration t1() const noexcept { return t1_; }
  util::SimDuration t2() const noexcept { return t2_; }
  /// Reader wait before declaring an empty slot.
  util::SimDuration t3() const noexcept { return t3_; }

  /// Composite slot durations as the inventory loop experiences them.
  util::SimDuration empty_slot() const noexcept;
  util::SimDuration collision_slot() const noexcept;
  util::SimDuration success_slot(std::size_t epc_bits) const noexcept;

 private:
  util::SimDuration reader_bits(std::size_t bits, bool full_preamble) const;
  util::SimDuration tag_bits(std::size_t payload_bits) const;

  LinkParams params_;
  util::SimDuration t_query_{0};
  util::SimDuration t_query_rep_{0};
  util::SimDuration t_query_adjust_{0};
  util::SimDuration t_ack_{0};
  util::SimDuration t_rn16_{0};
  util::SimDuration t1_{0};
  util::SimDuration t2_{0};
  util::SimDuration t3_{0};
};

}  // namespace tagwatch::gen2
