// TagFlagField: the dense per-tag-index session-flag mirror, shareable
// across readers.
//
// Session flags live on the *tag*, not on any reader: when several readers
// energize overlapping zones of one World, an ACK by reader 1 flips the
// same S2 flag reader 2 queries a moment later.  PR 5 buried this state
// inside Gen2Reader (one reader, one mirror); the fleet refactor hoists it
// here so N readers can be constructed over one shared field, while a
// single-reader setup keeps a private field and behaves exactly as before.
//
// The mirror is indexed like World::tags() (hot path: no hashing per slot)
// and repairs itself lazily against World::structure_epoch().  Tags removed
// from the world stash their flags by EPC together with the removal time
// (from World::departures()); on re-entry the stash is restored through
// TagFlags::power_cycle(), which applies the Gen2 persistence table to the
// de-energized gap.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "gen2/tag_runtime.hpp"
#include "sim/world.hpp"
#include "util/epc.hpp"

namespace tagwatch::gen2 {

class TagFlagField {
 public:
  /// Default timing is persistent() — the legacy immortal-flag semantics.
  explicit TagFlagField(SessionTiming timing = SessionTiming::persistent())
      : timing_(timing) {}

  const SessionTiming& timing() const noexcept { return timing_; }

  /// Brings the mirror up to date with `world`: grows it for newly added
  /// tags and remaps it after remove_tag() reindexing (detected via
  /// World::structure_epoch()).  Flags of removed tags are stashed by EPC
  /// with their de-energize time and resume through power_cycle() if the
  /// tag is re-added.  Cheap no-op when nothing changed.
  void sync(const sim::World& world);

  /// Flags of the tag at dense index `i` (valid after sync()).
  TagFlags& at(std::size_t i) { return flags_[i]; }
  const TagFlags& at(std::size_t i) const { return flags_[i]; }

  std::size_t size() const noexcept { return flags_.size(); }

  /// Flags of a tag by EPC — in the field or stashed as departed — or
  /// nullptr if the field has never covered it.  Syncs first.
  const TagFlags* find(const sim::World& world, const util::Epc& epc);

  /// Number of departed-tag stash entries (diagnostics/tests).
  std::size_t departed_count() const noexcept { return departed_.size(); }

  /// Census: how many present tags read B on `session` at `now` (decay
  /// applied).  B tags are invisible to target-A queries until re-armed or
  /// decayed — the quantity zone takeover's session-aware re-inventory
  /// exists to drive back down.  Syncs the mirror against `world` first.
  std::size_t count_b(const sim::World& world, Session session,
                      util::SimTime now);

 private:
  struct DepartedEntry {
    TagFlags flags;
    /// When the tag was de-energized, or nullopt for entries stashed only
    /// because a world reindex shifted their dense index (never unpowered).
    std::optional<util::SimTime> departed_at;
  };

  SessionTiming timing_;
  std::vector<TagFlags> flags_;
  std::vector<util::Epc> epcs_;
  std::unordered_map<util::Epc, DepartedEntry> departed_;
  std::uint64_t epoch_ = 0;
  /// Consumed prefix of World::departures().
  std::size_t departure_cursor_ = 0;
};

}  // namespace tagwatch::gen2
