// EPC Gen2 reader commands (the subset Tagwatch exercises).
#pragma once

#include <cstdint>
#include <string_view>

#include "util/bitstring.hpp"

namespace tagwatch::gen2 {

/// Tag memory banks (Gen2 §6.3.2.1).
enum class MemBank : std::uint8_t {
  kReserved = 0,
  kEpc = 1,
  kTid = 2,
  kUser = 3,
};

/// Inventory sessions S0–S3 (Gen2 §6.3.2.2).
enum class Session : std::uint8_t { kS0 = 0, kS1 = 1, kS2 = 2, kS3 = 3 };

/// Canonical short name ("S0".."S3") — used by config keys and journals.
constexpr const char* to_string(Session s) {
  switch (s) {
    case Session::kS0: return "S0";
    case Session::kS1: return "S1";
    case Session::kS2: return "S2";
    case Session::kS3: return "S3";
  }
  return "S?";
}

/// Parses "S0".."S3" (or bare "0".."3").  Throws std::invalid_argument.
Session session_from_string(std::string_view name);

/// Inventoried-flag values within a session.
enum class InvFlag : std::uint8_t { kA = 0, kB = 1 };

/// Canonical flag name ("A"/"B") for config keys and journals.
constexpr const char* to_string(InvFlag f) {
  return f == InvFlag::kA ? "A" : "B";
}

/// Parses "A"/"B".  Throws std::invalid_argument.
InvFlag inv_flag_from_string(std::string_view name);

/// What a Select command targets (Gen2 Table 6.29): one of the four
/// session inventoried flags, or the SL flag.
enum class SelectTarget : std::uint8_t {
  kSessionS0 = 0,
  kSessionS1 = 1,
  kSessionS2 = 2,
  kSessionS3 = 3,
  kSl = 4,
};

/// Select actions (Gen2 Table 6.30).  We name the two Tagwatch uses; the
/// numeric values follow the spec so the others can be added unchanged.
enum class SelectAction : std::uint8_t {
  /// Matching: assert SL (or set flag A); non-matching: deassert SL (set B).
  kAssertMatchedDeassertElse = 0,
  /// Matching: assert SL; non-matching: do nothing.
  kAssertMatchedOnly = 1,
  /// Matching: do nothing; non-matching: deassert SL.
  kDeassertUnmatchedOnly = 2,
  /// Matching: negate SL; non-matching: do nothing.
  kToggleMatched = 3,
  /// Matching: deassert SL; non-matching: assert SL.
  kDeassertMatchedAssertElse = 4,
  /// Matching: deassert SL; non-matching: do nothing.
  kDeassertMatchedOnly = 5,
  /// Matching: do nothing; non-matching: assert SL.
  kAssertUnmatchedOnly = 6,
  /// Matching: negate SL; non-matching: do nothing (variant).
  kToggleMatchedOnly = 7,
};

/// The Select command: picks the tag subpopulation for upcoming inventory
/// rounds by comparing `mask` against `bank` memory starting at bit
/// `pointer` (§5.1 of the paper; Gen2 §6.3.2.12.1.1).
struct SelectCommand {
  SelectTarget target = SelectTarget::kSl;
  SelectAction action = SelectAction::kAssertMatchedDeassertElse;
  MemBank bank = MemBank::kEpc;
  std::uint32_t pointer = 0;   ///< Starting bit address in the bank.
  util::BitString mask;        ///< Bits to compare (Length is mask.size()).
  bool truncate = false;
};

/// Which tags reply to a Query (Gen2 §6.3.2.12.2.1 "Sel" field).
enum class QuerySel : std::uint8_t {
  kAll = 0,     ///< All tags regardless of SL.
  kNotSl = 2,   ///< Only tags with SL deasserted.
  kSl = 3,      ///< Only tags with SL asserted.
};

/// The Query command that opens an inventory round.
struct QueryCommand {
  QuerySel sel = QuerySel::kAll;
  Session session = Session::kS0;
  InvFlag target = InvFlag::kA;  ///< Tags whose flag equals this participate.
  std::uint8_t q = 4;            ///< Initial frame size exponent (f = 2^Q).
};

}  // namespace tagwatch::gen2
