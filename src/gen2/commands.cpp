#include "gen2/commands.hpp"

#include <stdexcept>
#include <string>

namespace tagwatch::gen2 {

Session session_from_string(std::string_view name) {
  if (name == "S0" || name == "0") return Session::kS0;
  if (name == "S1" || name == "1") return Session::kS1;
  if (name == "S2" || name == "2") return Session::kS2;
  if (name == "S3" || name == "3") return Session::kS3;
  throw std::invalid_argument("unknown Gen2 session '" + std::string(name) +
                              "' (expected S0..S3)");
}

InvFlag inv_flag_from_string(std::string_view name) {
  if (name == "A") return InvFlag::kA;
  if (name == "B") return InvFlag::kB;
  throw std::invalid_argument("unknown inventoried flag '" +
                              std::string(name) + "' (expected A or B)");
}

}  // namespace tagwatch::gen2
