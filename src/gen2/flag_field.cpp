#include "gen2/flag_field.hpp"

namespace tagwatch::gen2 {

void TagFlagField::sync(const sim::World& world) {
  const std::vector<sim::SimTag>& tags = world.tags();
  if (world.structure_epoch() != epoch_) {
    // remove_tag() shifted indexes.  The departures log says *when* each
    // truly removed tag lost power; entries merely reindexed (their EPC is
    // still in the world) stash with no de-energize time and restore
    // untouched below.
    std::unordered_map<util::Epc, util::SimTime> departed_at;
    const std::vector<sim::TagDeparture>& log = world.departures();
    for (; departure_cursor_ < log.size(); ++departure_cursor_) {
      const sim::TagDeparture& d = log[departure_cursor_];
      departed_at.insert_or_assign(d.epc, d.at);
    }
    for (std::size_t i = 0; i < flags_.size(); ++i) {
      DepartedEntry entry{flags_[i], std::nullopt};
      if (const auto it = departed_at.find(epcs_[i]);
          it != departed_at.end()) {
        entry.departed_at = it->second;
      }
      departed_.insert_or_assign(epcs_[i], std::move(entry));
    }
    flags_.clear();
    epcs_.clear();
    epoch_ = world.structure_epoch();
  }
  // Pure growth: new indexes append behind the existing ones.
  for (std::size_t i = flags_.size(); i < tags.size(); ++i) {
    const util::Epc& epc = tags[i].epc;
    const auto it = departed_.find(epc);
    if (it != departed_.end()) {
      TagFlags flags = it->second.flags;
      if (it->second.departed_at) {
        // The tag spent [departed_at, now) de-energized: apply the Gen2
        // persistence table to the gap before it rejoins the field.
        flags.power_cycle(*it->second.departed_at, world.now(), timing_);
      }
      flags_.push_back(flags);
      departed_.erase(it);
    } else {
      flags_.emplace_back();  // Power-up state: ~SL, all sessions A.
    }
    epcs_.push_back(epc);
  }
}

std::size_t TagFlagField::count_b(const sim::World& world, Session session,
                                  util::SimTime now) {
  sync(world);
  std::size_t count = 0;
  for (const TagFlags& flags : flags_) {
    if (flags.session_flag_at(session, now) == InvFlag::kB) ++count;
  }
  return count;
}

const TagFlags* TagFlagField::find(const sim::World& world,
                                   const util::Epc& epc) {
  sync(world);
  if (const auto idx = world.find_tag(epc)) return &flags_[*idx];
  const auto it = departed_.find(epc);
  return it == departed_.end() ? nullptr : &it->second.flags;
}

}  // namespace tagwatch::gen2
