// tagwatch_lint — the project-invariant checker, as a CLI.
//
// Walks the source tree, runs every rule in src/lint over it, and prints
// findings in the file:line: [rule] message form editors understand.
// Exit code 1 on any finding, so CI can gate on it.
//
// Usage:
//   tagwatch_lint [--root <dir>] [--list-rules] [subdir...]
//
// With no subdirs, scans the project default: src tests tools examples
// bench.  --root sets the tree root (default: the current directory); all
// reported paths are root-relative.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace fs = std::filesystem;

namespace {

constexpr const char* kDefaultDirs[] = {"src", "tests", "tools", "examples",
                                        "bench"};

bool is_source_file(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp";
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path.string());
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Root-relative path with forward slashes (what rules key off).
std::string relative_slash_path(const fs::path& file, const fs::path& root) {
  std::string rel = fs::relative(file, root).generic_string();
  return rel;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::vector<std::string> dirs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const std::string& rule : tagwatch::lint::RuleEngine::rule_names()) {
        std::printf("%s\n", rule.c_str());
      }
      return 0;
    }
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "tagwatch_lint: --root needs a path\n");
        return 2;
      }
      root = argv[++i];
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "tagwatch_lint: unknown option %s\n", arg.c_str());
      return 2;
    }
    dirs.push_back(arg);
  }
  if (dirs.empty()) {
    dirs.assign(std::begin(kDefaultDirs), std::end(kDefaultDirs));
  }

  std::vector<tagwatch::lint::SourceFile> files;
  try {
    std::vector<fs::path> paths;
    for (const std::string& dir : dirs) {
      const fs::path base = root / dir;
      if (!fs::exists(base)) continue;
      for (const auto& entry : fs::recursive_directory_iterator(base)) {
        if (entry.is_regular_file() && is_source_file(entry.path())) {
          paths.push_back(entry.path());
        }
      }
    }
    // Deterministic order regardless of directory iteration order.
    std::sort(paths.begin(), paths.end());
    files.reserve(paths.size());
    for (const fs::path& path : paths) {
      files.push_back({relative_slash_path(path, root), read_file(path)});
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tagwatch_lint: %s\n", e.what());
    return 2;
  }

  const tagwatch::lint::RuleEngine engine;
  const tagwatch::lint::LintReport report = engine.run(files);
  for (const tagwatch::lint::Finding& f : report.findings) {
    std::printf("%s:%zu: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  }
  std::printf(
      "tagwatch_lint: %zu files, %zu finding%s, %zu suppression%s used "
      "(%zu allow annotation%s in tree)\n",
      files.size(), report.findings.size(),
      report.findings.size() == 1 ? "" : "s", report.suppressions_used,
      report.suppressions_used == 1 ? "" : "s", report.allow_annotations,
      report.allow_annotations == 1 ? "" : "s");
  return report.findings.empty() ? 0 : 1;
}
