// tagwatch_lint — the project-invariant checker, as a CLI.
//
// Walks the source tree, runs every rule in src/lint over it, and prints
// findings in the file:line: [rule] message form editors understand.
// Exit code 1 on any unreconciled finding, so CI can gate on it.
//
// Usage:
//   tagwatch_lint [--root <dir>] [--rule <name>]... [--sarif <path>]
//                 [--baseline <path>] [--list-rules] [subdir...]
//
// With no subdirs, scans the project default: src tests tools examples
// bench.  All reported paths are root-relative with forward slashes.
//
//   --root <dir>      tree root.  When omitted, the tool walks up from
//                     the current directory looking for the repo
//                     signature (src/lint/lint.hpp + CMakeLists.txt), so
//                     it works from build/, a subdir, or an editor's cwd.
//   --rule <name>     keep only this rule's findings (repeatable); the
//                     full analysis still runs, only reporting filters.
//   --sarif <path>    also write findings as SARIF 2.1.0 for GitHub
//                     code scanning ("-" for stdout).
//   --baseline <path> reconcile findings against a checked-in baseline
//                     (`rule|file|message` lines): baselined findings
//                     don't fail the run, but *stale* baseline entries —
//                     lines no current finding matches — do, so the file
//                     can only shrink.
//   --list-rules      print the rule catalog (name + summary) and exit.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.hpp"
#include "lint/sarif.hpp"

namespace fs = std::filesystem;

namespace {

constexpr const char* kDefaultDirs[] = {"src", "tests", "tools", "examples",
                                        "bench"};

bool is_source_file(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp";
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path.string());
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Root-relative path with forward slashes (what rules key off).
std::string relative_slash_path(const fs::path& file, const fs::path& root) {
  std::string rel = fs::relative(file, root).generic_string();
  return rel;
}

/// The repo signature: the directory that holds both the lint engine and
/// the top-level CMakeLists is the tree the tool should scan.
bool looks_like_repo_root(const fs::path& dir) {
  return fs::exists(dir / "src" / "lint" / "lint.hpp") &&
         fs::exists(dir / "CMakeLists.txt");
}

/// Walks up from `start` to the filesystem root looking for the repo
/// signature; empty path when nothing matches.
fs::path discover_root(const fs::path& start) {
  fs::path dir = fs::weakly_canonical(start);
  while (true) {
    if (looks_like_repo_root(dir)) return dir;
    const fs::path parent = dir.parent_path();
    if (parent == dir) return {};
    dir = parent;
  }
}

/// A baseline entry: `rule|file|message`, exactly as printed by
/// --baseline reconciliation.  Line numbers are deliberately absent so
/// unrelated edits above a baselined finding don't churn the file.
std::string baseline_key(const tagwatch::lint::Finding& f) {
  return f.rule + "|" + f.file + "|" + f.message;
}

std::vector<std::string> load_baseline(const fs::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open baseline " + path.string());
  std::vector<std::string> entries;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    entries.push_back(line);
  }
  return entries;
}

void write_output(const std::string& path, const std::string& content) {
  if (path == "-") {
    std::fwrite(content.data(), 1, content.size(), stdout);
    return;
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << content;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root;
  std::vector<std::string> dirs;
  std::set<std::string> rule_filter;
  std::string sarif_path;
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const tagwatch::lint::RuleInfo& rule :
           tagwatch::lint::RuleEngine::rules()) {
        std::printf("%-24s %s\n", rule.name.c_str(), rule.summary.c_str());
      }
      return 0;
    }
    const auto take_value = [&](const char* name) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "tagwatch_lint: %s needs a value\n", name);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--root") {
      const char* value = take_value("--root");
      if (value == nullptr) return 2;
      root = value;
      continue;
    }
    if (arg == "--rule" || arg.rfind("--rule=", 0) == 0) {
      std::string name;
      if (arg == "--rule") {
        const char* value = take_value("--rule");
        if (value == nullptr) return 2;
        name = value;
      } else {
        name = arg.substr(7);
      }
      const auto& names = tagwatch::lint::RuleEngine::rule_names();
      if (std::find(names.begin(), names.end(), name) == names.end()) {
        std::fprintf(stderr,
                     "tagwatch_lint: unknown rule '%s' (see --list-rules)\n",
                     name.c_str());
        return 2;
      }
      rule_filter.insert(name);
      continue;
    }
    if (arg == "--sarif" || arg.rfind("--sarif=", 0) == 0) {
      if (arg == "--sarif") {
        const char* value = take_value("--sarif");
        if (value == nullptr) return 2;
        sarif_path = value;
      } else {
        sarif_path = arg.substr(8);
      }
      continue;
    }
    if (arg == "--baseline" || arg.rfind("--baseline=", 0) == 0) {
      if (arg == "--baseline") {
        const char* value = take_value("--baseline");
        if (value == nullptr) return 2;
        baseline_path = value;
      } else {
        baseline_path = arg.substr(11);
      }
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "tagwatch_lint: unknown option %s\n", arg.c_str());
      return 2;
    }
    dirs.push_back(arg);
  }
  if (root.empty()) {
    root = discover_root(fs::current_path());
    if (root.empty()) {
      std::fprintf(stderr,
                   "tagwatch_lint: no repo root found above the current "
                   "directory (looked for src/lint/lint.hpp and "
                   "CMakeLists.txt); pass --root <dir>\n");
      return 2;
    }
  }
  if (dirs.empty()) {
    dirs.assign(std::begin(kDefaultDirs), std::end(kDefaultDirs));
  }

  std::vector<tagwatch::lint::SourceFile> files;
  try {
    std::vector<fs::path> paths;
    for (const std::string& dir : dirs) {
      const fs::path base = root / dir;
      if (!fs::exists(base)) continue;
      for (const auto& entry : fs::recursive_directory_iterator(base)) {
        if (entry.is_regular_file() && is_source_file(entry.path())) {
          paths.push_back(entry.path());
        }
      }
    }
    // Deterministic order regardless of directory iteration order.
    std::sort(paths.begin(), paths.end());
    files.reserve(paths.size());
    for (const fs::path& path : paths) {
      files.push_back({relative_slash_path(path, root), read_file(path)});
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tagwatch_lint: %s\n", e.what());
    return 2;
  }

  const tagwatch::lint::RuleEngine engine;
  tagwatch::lint::LintReport report = engine.run(files);
  if (!rule_filter.empty()) {
    std::erase_if(report.findings, [&](const tagwatch::lint::Finding& f) {
      return rule_filter.count(f.rule) == 0;
    });
  }

  // Baseline reconciliation: matched entries silence their findings;
  // unmatched (stale) entries are themselves failures so the baseline
  // can only shrink, never mask fresh regressions.
  std::size_t baselined = 0;
  std::vector<std::string> stale;
  if (!baseline_path.empty()) {
    std::vector<std::string> entries;
    try {
      entries = load_baseline(baseline_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "tagwatch_lint: %s\n", e.what());
      return 2;
    }
    std::set<std::string> current;
    for (const tagwatch::lint::Finding& f : report.findings) {
      current.insert(baseline_key(f));
    }
    std::set<std::string> known(entries.begin(), entries.end());
    for (const std::string& entry : entries) {
      if (current.count(entry) == 0) stale.push_back(entry);
    }
    const std::size_t before = report.findings.size();
    std::erase_if(report.findings, [&](const tagwatch::lint::Finding& f) {
      return known.count(baseline_key(f)) > 0;
    });
    baselined = before - report.findings.size();
  }

  for (const tagwatch::lint::Finding& f : report.findings) {
    std::printf("%s:%zu: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  }
  for (const std::string& entry : stale) {
    std::printf("%s: [baseline] stale entry — no current finding matches; "
                "remove it\n",
                baseline_path.c_str());
    std::printf("  %s\n", entry.c_str());
  }

  if (!sarif_path.empty()) {
    try {
      write_output(sarif_path, tagwatch::lint::to_sarif(report.findings));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "tagwatch_lint: %s\n", e.what());
      return 2;
    }
  }

  std::printf(
      "tagwatch_lint: %zu files, %zu finding%s, %zu baselined, "
      "%zu suppression%s used (%zu allow annotation%s in tree)\n",
      files.size(), report.findings.size(),
      report.findings.size() == 1 ? "" : "s", baselined,
      report.suppressions_used, report.suppressions_used == 1 ? "" : "s",
      report.allow_annotations, report.allow_annotations == 1 ? "" : "s");
  return report.findings.empty() && stale.empty() ? 0 : 1;
}
