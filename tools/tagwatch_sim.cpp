// tagwatch_sim — scenario-driven Tagwatch simulator CLI.
//
// Runs a complete two-phase deployment described by a key=value scenario
// file (or built-in defaults) and reports per-cycle behaviour, final IRRs,
// and optionally the last Phase II schedule as ROSpec XML.
//
// Usage:
//   tagwatch_sim [scenario.conf]
//
// Scenario keys (all optional):
//   tags            = 40          total tag count
//   movers          = 2           tags on the turntable/track
//   mover_speed     = 0.7         m/s
//   people          = 0           walking multipath reflectors
//   mode            = tagwatch    tagwatch | naive | read-all
//   cycles          = 10
//   phase2_seconds  = 5
//   channels        = 1           1 or 16 (920–926 MHz plan)
//   seed            = 2017
//   pinned_targets  = <hex,hex>   always-scheduled EPCs
//   irr_top         = 10          rows in the final IRR table
//   export_schedule = false       print the last cycle's ROSpec XML
//   votes           = 1           Phase-I motion votes needed to mark a tag
//                                 mobile (raise to 2-3 for large multi-
//                                 antenna scenes: false votes compound)
//   k               = 8           mixture components per immobility model
//   record_journal  = <path>      journal every reader operation to a CSV
//                                 trace (replayable with replay_journal)
//   replay_journal  = <path>      replay a recorded trace instead of
//                                 simulating (world keys are ignored)
//   pipeline_stats  = false       print per-sink delivery accounting
#include <cstdio>
#include <memory>
#include <string>

#include "core/metrics.hpp"
#include "core/schedule_export.hpp"
#include "core/tagwatch.hpp"
#include "llrp/recording_reader_client.hpp"
#include "llrp/replay_reader_client.hpp"
#include "llrp/sim_reader_client.hpp"
#include "util/circular.hpp"
#include "util/config.hpp"
#include "util/stats.hpp"

using namespace tagwatch;

namespace {

core::ScheduleMode parse_mode(const std::string& mode) {
  if (mode == "tagwatch") return core::ScheduleMode::kGreedyCover;
  if (mode == "naive") return core::ScheduleMode::kNaiveEpcMasks;
  if (mode == "read-all") return core::ScheduleMode::kReadAll;
  throw std::invalid_argument("unknown mode: " + mode +
                              " (expected tagwatch|naive|read-all)");
}

}  // namespace

int run(int argc, char** argv);

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tagwatch_sim: %s\n", e.what());
    return 1;
  }
}

int run(int argc, char** argv) {
  util::KeyValueConfig cfg;
  if (argc > 1) {
    cfg = util::KeyValueConfig::load(argv[1]);
    std::printf("scenario: %s\n", argv[1]);
  } else {
    std::printf("scenario: built-in defaults (pass a .conf path to change)\n");
  }

  const auto n_tags = static_cast<std::size_t>(cfg.get_int_or("tags", 40));
  const auto n_movers = static_cast<std::size_t>(cfg.get_int_or("movers", 2));
  const double mover_speed = cfg.get_double_or("mover_speed", 0.7);
  const auto n_people = static_cast<std::size_t>(cfg.get_int_or("people", 0));
  const core::ScheduleMode mode = parse_mode(cfg.get_or("mode", "tagwatch"));
  const auto cycles = static_cast<std::size_t>(cfg.get_int_or("cycles", 10));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int_or("seed", 2017));
  const bool sixteen_channels = cfg.get_int_or("channels", 1) == 16;
  const auto irr_top = static_cast<std::size_t>(cfg.get_int_or("irr_top", 10));

  // ------------------------------------------------------------- world
  sim::World world;
  util::Rng rng(seed);
  std::vector<util::Epc> movers;
  for (std::size_t i = 0; i < n_tags; ++i) {
    sim::SimTag tag;
    tag.epc = util::Epc::random(rng);
    if (i < n_movers) {
      tag.motion = std::make_shared<sim::CircularTrack>(
          util::Vec3{0.5, 0.5, 0.0}, 0.2, mover_speed,
          rng.uniform(0.0, util::kTwoPi));
      movers.push_back(tag.epc);
    } else {
      tag.motion = std::make_shared<sim::StaticMotion>(
          util::Vec3{rng.uniform(-3, 3), rng.uniform(-3, 3), 0.0});
    }
    tag.tag_phase_rad = rng.uniform(0.0, util::kTwoPi);
    world.add_tag(std::move(tag));
  }
  util::Rng walk_rng = rng.fork();
  const auto horizon = util::sec(static_cast<std::int64_t>(cycles) * 10);
  for (std::size_t p = 0; p < n_people; ++p) {
    world.add_reflector({std::make_shared<sim::RandomWaypoint>(
                             util::Vec3{-4, -4, 0}, util::Vec3{4, 4, 0}, 1.0,
                             horizon, walk_rng, util::sec(2)),
                         0.3});
  }

  // ------------------------------------------------------------ reader
  rf::RfChannel channel(sixteen_channels
                            ? rf::ChannelPlan::china_920_926()
                            : rf::ChannelPlan::single(920.625e6));
  std::vector<rf::Antenna> antennas{{1, {-5, -5, 0}, 8.0},
                                    {2, {5, -5, 0}, 8.0},
                                    {3, {-5, 5, 0}, 8.0},
                                    {4, {5, 5, 0}, 8.0}};
  llrp::SimReaderClient sim_client(
      gen2::LinkTiming(gen2::LinkParams::paper_testbed()),
      gen2::ReaderConfig{}, world, channel, antennas, seed + 1);

  // Transport selection: simulate, simulate-and-record, or replay a trace.
  // The controller only ever sees the abstract interface.
  const std::string record_path = cfg.get_or("record_journal", "");
  const std::string replay_path = cfg.get_or("replay_journal", "");
  std::unique_ptr<llrp::RecordingReaderClient> recorder;
  std::unique_ptr<llrp::ReplayReaderClient> replayer;
  llrp::ReaderClient* client = &sim_client;
  if (!replay_path.empty()) {
    replayer = std::make_unique<llrp::ReplayReaderClient>(
        llrp::ReaderJournal::load(replay_path));
    client = replayer.get();
    std::printf("replaying journal: %s (%zu operations, backend %s)\n",
                replay_path.c_str(), replayer->remaining(),
                replayer->capabilities().model.c_str());
  } else if (!record_path.empty()) {
    recorder = std::make_unique<llrp::RecordingReaderClient>(sim_client);
    client = recorder.get();
  }

  // ---------------------------------------------------------- tagwatch
  core::TagwatchConfig twcfg;
  twcfg.mode = mode;
  twcfg.phase2_duration = util::sec(cfg.get_int_or("phase2_seconds", 5));
  twcfg.pinned_targets = cfg.get_epc_list("pinned_targets");
  twcfg.assessor.mobile_vote_threshold =
      static_cast<std::size_t>(cfg.get_int_or("votes", 1));
  twcfg.assessor.detector.phase_mog.max_components =
      static_cast<std::size_t>(cfg.get_int_or("k", 8));
  core::TagwatchController ctl(twcfg, *client);

  core::IrrMonitor monitor(twcfg.phase2_duration);
  ctl.set_read_listener(
      [&monitor](const rf::TagReading& r) { monitor.record(r); });
  const std::shared_ptr<core::PipelineMetrics> metrics =
      core::attach_metrics(ctl);

  std::printf("\n%5s  %-10s  %7s  %7s  %9s  %12s  %10s\n", "cycle", "mode",
              "scene", "targets", "bitmasks", "phase2 reads", "gap (ms)");
  core::CycleReport last_report;
  for (std::size_t c = 0; c < cycles; ++c) {
    const core::CycleReport r = ctl.run_cycle();
    const std::string gap =
        r.interphase_gap
            ? util::format_fixed(util::to_millis(*r.interphase_gap), 1)
            : std::string("-");
    std::printf("%5zu  %-10s  %7zu  %7zu  %9zu  %12zu  %10s\n", r.cycle_index,
                r.read_all_fallback ? "read-all" : "selective",
                r.scene.size(), r.targets.size(), r.schedule.selections.size(),
                r.phase2_readings, gap.c_str());
    last_report = r;
  }

  // --------------------------------------------------------- reporting
  const util::SimTime now = client->now();
  std::printf("\ntop per-tag IRRs over the last %2.0f s window:\n",
              util::to_seconds(monitor.window()));
  std::printf("%-26s  %8s  %s\n", "EPC", "IRR(Hz)", "role");
  std::size_t shown = 0;
  for (const auto& [epc, irr] : monitor.snapshot(now)) {
    if (shown++ >= irr_top) break;
    const bool mover =
        std::find(movers.begin(), movers.end(), epc) != movers.end();
    std::printf("%-26s  %8.2f  %s\n", (epc.to_hex().substr(0, 24)).c_str(),
                irr, mover ? "mobile" : "static");
  }

  if (cfg.get_bool_or("pipeline_stats", false)) {
    const core::PipelineMetricsSnapshot snap = metrics->snapshot();
    std::printf("\npipeline: %llu readings over %llu cycles "
                "(%llu read-all), %zu slots (%zu empty, %zu collided)\n",
                static_cast<unsigned long long>(snap.readings_total()),
                static_cast<unsigned long long>(snap.cycles),
                static_cast<unsigned long long>(snap.read_all_cycles),
                snap.slot_totals.slots, snap.slot_totals.empty_slots,
                snap.slot_totals.collision_slots);
    std::printf("%-10s  %10s  %8s  %12s\n", "sink", "delivered", "dropped",
                "mean us/read");
    for (const auto& sink : snap.sinks) {
      std::printf("%-10s  %10llu  %8llu  %12.3f\n", sink.name.c_str(),
                  static_cast<unsigned long long>(sink.delivered),
                  static_cast<unsigned long long>(sink.dropped),
                  sink.mean_dispatch_us());
    }
  }

  if (cfg.get_bool_or("export_schedule", false) &&
      !last_report.schedule.selections.empty()) {
    std::printf("\nlast Phase II schedule as ROSpec XML:\n%s",
                core::schedule_to_xml(last_report.schedule).c_str());
  }

  if (recorder != nullptr) {
    recorder->journal().save(record_path);
    std::printf("\nrecorded %zu reader operations to %s\n",
                recorder->journal().size(), record_path.c_str());
  }
  return 0;
}
