// tagwatch_sim — scenario-driven Tagwatch simulator CLI.
//
// Runs a complete two-phase deployment described by a key=value scenario
// file (or built-in defaults) and reports per-cycle behaviour, final IRRs,
// and optionally the last Phase II schedule as ROSpec XML.
//
// Usage:
//   tagwatch_sim [scenario.conf]
//
// Scenario keys (all optional):
//   tags            = 40          total tag count
//   movers          = 2           tags on the turntable/track
//   mover_speed     = 0.7         m/s
//   people          = 0           walking multipath reflectors
//   mode            = tagwatch    tagwatch | naive | read-all
//   scheduler_evaluation = lazy   lazy | dense — greedy-cover gain
//                                 evaluation (dense is the full-rescan
//                                 reference path; plans are identical)
//   planner.incremental = false   keep the Phase-II candidate structure
//                                 alive across cycles and patch it from
//                                 scene/target deltas instead of
//                                 rebuilding (tagwatch mode only; plans
//                                 are bit-identical either way)
//   planner.churn_threshold = 0.15  delta fraction of the scene above
//                                 which the incremental planner rebuilds
//                                 from scratch [0,1]
//   planner.threads = 1           worker threads of Phase-II candidate
//                                 generation (plans are bit-identical at
//                                 any value)
//   simd.force_scalar = false     pin util::simd kernels to the portable
//                                 scalar implementations (A/B baseline;
//                                 results are bit-identical)
//   cycles          = 10
//   phase2_seconds  = 5
//   channels        = 1           1 or 16 (920–926 MHz plan)
//   seed            = 2017
//   pinned_targets  = <hex,hex>   always-scheduled EPCs
//   irr_top         = 10          rows in the final IRR table
//   export_schedule = false       print the last cycle's ROSpec XML
//   votes           = 1           Phase-I motion votes needed to mark a tag
//                                 mobile (raise to 2-3 for large multi-
//                                 antenna scenes: false votes compound)
//   k               = 8           mixture components per immobility model
//   record_journal  = <path>      journal every reader operation to a CSV
//                                 trace (replayable with replay_journal)
//   replay_journal  = <path>      replay a recorded trace instead of
//                                 simulating (world keys are ignored)
//   pipeline_stats  = false       print per-sink delivery accounting
//
// Fleet keys (multi-reader mode; see docs/API.md "Fleet and sessions").
// Setting fleet.readers >= 2 switches to a FleetController over a strip of
// overlapping zones; record_journal/replay_journal then act as path
// prefixes (<prefix>.reader<k>.csv per reader, <prefix>.fleet.csv for the
// fleet journal):
//   fleet.readers   = 1           reader count (>= 2 enables fleet mode)
//   fleet.pitch     = 4.0         zone spacing along the strip (m)
//   fleet.radius    = 3.0         zone radius (m); > pitch/2 overlaps seams
//   fleet.policy    = independent independent | shared | per-reader
//   fleet.session   = S1          Gen2 session (shared/base session)
//   fleet.target    = A           A | B inventoried target when not re-arming
//   fleet.dedup_ms  = 500         cross-reader dedup window (0 disables)
//   fleet.seam_tags = 0           extra static tags planted on each seam
//
// Fleet fault-tolerance keys (see docs/API.md "Fleet failure model").
// fault_injection=true in fleet mode wraps every reader in a per-reader
// fault injector (journals then carry the faults through the per-reader
// path prefixes and replay bit-exactly):
//   fleet.takeover     = adaptive  none | static | adaptive zone takeover
//   fleet.suspect_after = 2        consecutive failed cycles -> Suspect
//   fleet.down_after   = 3         consecutive failed cycles -> Down
//   fleet.probe_period = 2         probe a Down reader every N fleet cycles
//   fleet.probation    = 2         clean probes to restore Healthy
//   fleet.recover_capacity = 1024  bounded orphan re-cover queue size
//   fleet.fault.rate   = 0         per-execute failure probability [0,1]
//   fleet.fault.seed   = 99        fault schedule RNG seed (base; +r per
//                                  reader)
//   fleet.fault.reader = -1        reader killed by a scripted outage
//   fleet.fault.down_s = 0         outage start (sim seconds)
//   fleet.fault.up_s   = 0         outage end (0 = never recovers)
//   fleet.fault.reconnect_ms = 50  reconnect latency per faulted execute
//
// Fault-injection keys (flaky-reader drills; see docs/API.md "Failure
// model & degraded mode"):
//   fault_injection      = false  wrap the reader in a fault injector
//   fault_rate           = 0.1    per-execute failure probability [0,1]
//   fault_seed           = 99     fault schedule RNG seed
//   fault_drop_rate      = 0      per-reading drop probability [0,1]
//   fault_duplicate_rate = 0      per-reading duplicate probability [0,1]
//   fault_corrupt_rate   = 0      per-reading phase-noise probability [0,1]
//   fault_reconnect_ms   = 50     reconnect latency after a disconnect
//   retry_attempts       = 3      controller attempts per ROSpec [1,10]
//   degrade_after        = 3      K failed cycles -> read-all fallback
//   restore_after        = 3      M healthy cycles -> adaptive again
#include <algorithm>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/fleet.hpp"
#include "core/metrics.hpp"
#include "core/schedule_export.hpp"
#include "core/tagwatch.hpp"
#include "llrp/fault_injection.hpp"
#include "llrp/recording_reader_client.hpp"
#include "llrp/replay_reader_client.hpp"
#include "llrp/sim_reader_client.hpp"
#include "util/circular.hpp"
#include "util/config.hpp"
#include "util/stats.hpp"

using namespace tagwatch;

namespace {

core::ScheduleMode parse_mode(const std::string& mode) {
  if (mode == "tagwatch") return core::ScheduleMode::kGreedyCover;
  if (mode == "naive") return core::ScheduleMode::kNaiveEpcMasks;
  if (mode == "read-all") return core::ScheduleMode::kReadAll;
  throw std::invalid_argument("unknown mode: " + mode +
                              " (expected tagwatch|naive|read-all)");
}

core::GreedyEvaluation parse_evaluation(const std::string& evaluation) {
  if (evaluation == "lazy") return core::GreedyEvaluation::kLazy;
  if (evaluation == "dense") return core::GreedyEvaluation::kDense;
  throw std::invalid_argument("unknown scheduler_evaluation: " + evaluation +
                              " (expected lazy|dense)");
}

/// Every key a scenario file may contain.  Unknown keys are rejected with
/// this list so a typo ("cycels = 10") fails loudly instead of silently
/// running defaults.
constexpr const char* kAcceptedKeys[] = {
    "tags", "movers", "mover_speed", "people", "mode", "cycles",
    "phase2_seconds", "channels", "seed", "pinned_targets", "irr_top",
    "export_schedule", "votes", "k", "assessor_threads", "record_journal",
    "replay_journal",
    "pipeline_stats", "fault_injection", "fault_rate", "fault_seed",
    "fault_drop_rate", "fault_duplicate_rate", "fault_corrupt_rate",
    "fault_reconnect_ms", "retry_attempts", "degrade_after",
    "restore_after", "scheduler_evaluation", "planner.incremental",
    "planner.churn_threshold", "planner.threads", "simd.force_scalar",
    "fleet.readers", "fleet.pitch", "fleet.radius", "fleet.policy",
    "fleet.session", "fleet.target", "fleet.dedup_ms", "fleet.seam_tags",
    "fleet.takeover", "fleet.suspect_after", "fleet.down_after",
    "fleet.probe_period", "fleet.probation", "fleet.recover_capacity",
    "fleet.fault.rate", "fleet.fault.seed", "fleet.fault.reader",
    "fleet.fault.down_s", "fleet.fault.up_s", "fleet.fault.reconnect_ms"};

void reject_unknown_keys(const util::KeyValueConfig& cfg) {
  for (const std::string& key : cfg.keys()) {
    const bool known =
        std::find_if(std::begin(kAcceptedKeys), std::end(kAcceptedKeys),
                     [&key](const char* k) { return key == k; }) !=
        std::end(kAcceptedKeys);
    if (known) continue;
    std::string accepted;
    for (const char* k : kAcceptedKeys) {
      if (!accepted.empty()) accepted += ", ";
      accepted += k;
    }
    throw std::invalid_argument("unknown scenario key '" + key +
                                "'; accepted keys: " + accepted);
  }
}

/// get_int_or with a range check and a key-named message — std::stoll's
/// bare "stoll" exception never reaches the user.
std::int64_t int_in(const util::KeyValueConfig& cfg, const std::string& key,
                    std::int64_t fallback, std::int64_t lo, std::int64_t hi) {
  std::int64_t v = fallback;
  try {
    v = cfg.get_int_or(key, fallback);
  } catch (const std::exception&) {
    throw std::invalid_argument("scenario key '" + key + "': '" +
                                cfg.get_or(key, "") +
                                "' is not an integer");
  }
  if (v < lo || v > hi) {
    throw std::invalid_argument(
        "scenario key '" + key + "' = " + std::to_string(v) +
        " out of range; accepted: [" + std::to_string(lo) + ", " +
        std::to_string(hi) + "]");
  }
  return v;
}

double double_in(const util::KeyValueConfig& cfg, const std::string& key,
                 double fallback, double lo, double hi) {
  double v = fallback;
  try {
    v = cfg.get_double_or(key, fallback);
  } catch (const std::exception&) {
    throw std::invalid_argument("scenario key '" + key + "': '" +
                                cfg.get_or(key, "") + "' is not a number");
  }
  if (v < lo || v > hi) {
    char msg[160];
    std::snprintf(msg, sizeof(msg),
                  "scenario key '%s' = %g out of range; accepted: [%g, %g]",
                  key.c_str(), v, lo, hi);
    throw std::invalid_argument(msg);
  }
  return v;
}

gen2::InvFlag parse_inv_target(const std::string& target) {
  if (target == "A") return gen2::InvFlag::kA;
  if (target == "B") return gen2::InvFlag::kB;
  throw std::invalid_argument("unknown fleet.target: " + target +
                              " (expected A|B)");
}

/// Multi-reader path: a strip of overlapping zones under a
/// FleetController.  Entered when fleet.readers >= 2; shares the scalar
/// keys (tags, movers, cycles, seed, ...) with the single-reader path.
int run_fleet(const util::KeyValueConfig& cfg) {
  const auto n_readers =
      static_cast<std::size_t>(int_in(cfg, "fleet.readers", 2, 2, 16));
  const double pitch = double_in(cfg, "fleet.pitch", 4.0, 0.5, 1000.0);
  const double radius = double_in(cfg, "fleet.radius", 3.0, 0.5, 1000.0);
  const core::SessionPolicy policy =
      core::session_policy_from_string(cfg.get_or("fleet.policy",
                                                  "independent"));
  const gen2::Session session =
      gen2::session_from_string(cfg.get_or("fleet.session", "S1"));
  const gen2::InvFlag target =
      parse_inv_target(cfg.get_or("fleet.target", "A"));
  const auto dedup_window =
      util::msec(int_in(cfg, "fleet.dedup_ms", 500, 0, 3600000));
  const auto seam_tags =
      static_cast<std::size_t>(int_in(cfg, "fleet.seam_tags", 0, 0, 1000));

  const auto n_tags =
      static_cast<std::size_t>(int_in(cfg, "tags", 40, 1, 100000));
  const auto n_movers = static_cast<std::size_t>(
      int_in(cfg, "movers", 2, 0, static_cast<std::int64_t>(n_tags)));
  const double mover_speed = double_in(cfg, "mover_speed", 0.7, 0.0, 100.0);
  const auto cycles =
      static_cast<std::size_t>(int_in(cfg, "cycles", 10, 1, 1000000));
  const auto seed = static_cast<std::uint64_t>(int_in(
      cfg, "seed", 2017, 0, std::numeric_limits<std::int64_t>::max()));

  // Fault-tolerance knobs (defaults mirror FleetResilienceConfig).
  const core::TakeoverPolicy takeover = core::takeover_policy_from_string(
      cfg.get_or("fleet.takeover", "adaptive"));
  const double fault_rate = double_in(cfg, "fleet.fault.rate", 0.0, 0.0, 1.0);
  const std::int64_t fault_reader =
      int_in(cfg, "fleet.fault.reader", -1, -1, 15);
  const double fault_down_s =
      double_in(cfg, "fleet.fault.down_s", 0.0, 0.0, 1e9);
  const double fault_up_s = double_in(cfg, "fleet.fault.up_s", 0.0, 0.0, 1e9);
  const bool inject_faults = cfg.get_bool_or("fault_injection", false) ||
                             fault_rate > 0.0 || fault_reader >= 0;

  // ------------------------------------------------------------- world
  // Statics round-robin across the zone centers, extra statics on every
  // seam, movers orbiting the middle of the strip so they cross zones.
  sim::World world;
  util::Rng rng(seed);
  const double strip_mid = static_cast<double>(n_readers - 1) * pitch / 2.0;
  for (std::size_t i = 0; i < n_tags; ++i) {
    sim::SimTag tag;
    tag.epc = util::Epc::random(rng);
    if (i < n_movers) {
      tag.motion = std::make_shared<sim::CircularTrack>(
          util::Vec3{strip_mid, 0, 0}, pitch * 0.6, mover_speed,
          rng.uniform(0.0, util::kTwoPi));
    } else {
      const double cx = static_cast<double>((i - n_movers) % n_readers) * pitch;
      tag.motion = std::make_shared<sim::StaticMotion>(util::Vec3{
          cx + rng.uniform(-0.5, 0.5), rng.uniform(-0.5, 0.5), 0.0});
    }
    tag.tag_phase_rad = rng.uniform(0.0, util::kTwoPi);
    world.add_tag(std::move(tag));
  }
  for (std::size_t r = 0; r + 1 < n_readers; ++r) {
    const double seam_x = (static_cast<double>(r) + 0.5) * pitch;
    for (std::size_t i = 0; i < seam_tags; ++i) {
      sim::SimTag tag;
      tag.epc = util::Epc::random(rng);
      tag.motion = std::make_shared<sim::StaticMotion>(
          util::Vec3{seam_x, rng.uniform(-0.3, 0.3), 0.0});
      tag.tag_phase_rad = rng.uniform(0.0, util::kTwoPi);
      world.add_tag(std::move(tag));
    }
  }

  // ----------------------------------------------------------- readers
  const std::int64_t channels = int_in(cfg, "channels", 1, 1, 16);
  rf::RfChannel channel(channels == 16
                            ? rf::ChannelPlan::china_920_926()
                            : rf::ChannelPlan::single(920.625e6));
  auto field = std::make_shared<gen2::TagFlagField>(
      gen2::SessionTiming::spec_default());
  const std::string record_path = cfg.get_or("record_journal", "");
  const std::string replay_path = cfg.get_or("replay_journal", "");
  std::vector<std::unique_ptr<llrp::SimReaderClient>> sims;
  std::vector<std::unique_ptr<llrp::FaultInjectingReaderClient>> injectors;
  std::vector<std::unique_ptr<llrp::RecordingReaderClient>> recorders;
  std::vector<std::unique_ptr<llrp::ReplayReaderClient>> replayers;
  std::vector<core::FleetReaderSpec> specs;
  for (std::size_t r = 0; r < n_readers; ++r) {
    const double cx = static_cast<double>(r) * pitch;
    sim::Zone zone{"zone-" + std::to_string(r), {cx, 0, 0}, radius};
    llrp::ReaderClient* client = nullptr;
    if (!replay_path.empty()) {
      // A replayed trace already contains its faults (X records): no
      // injector on this path, ever.
      const std::string path =
          replay_path + ".reader" + std::to_string(r) + ".csv";
      replayers.push_back(std::make_unique<llrp::ReplayReaderClient>(
          llrp::ReaderJournal::load(path)));
      client = replayers.back().get();
      std::printf("replaying reader %zu from %s (%zu operations)\n", r,
                  path.c_str(), replayers.back()->remaining());
    } else {
      gen2::ReaderConfig rc;
      rc.coverage = zone;
      sims.push_back(std::make_unique<llrp::SimReaderClient>(
          gen2::LinkTiming(gen2::LinkParams::paper_testbed()), rc, world,
          channel, std::vector<rf::Antenna>{{1, {cx, 0, 2}, 8.0}},
          seed + 10 + r, field));
      client = sims.back().get();
      if (inject_faults) {
        // Stack order sim -> injector -> recorder: the recorder journals
        // the faults (X records) under this reader's path prefix, so a
        // faulted fleet replays bit-exactly.
        llrp::FaultPlan plan;
        plan.seed = static_cast<std::uint64_t>(int_in(
                        cfg, "fleet.fault.seed", 99, 0,
                        std::numeric_limits<std::int64_t>::max())) +
                    r;
        plan.execute_failure_probability = fault_rate;
        plan.weight_disconnect = 0.3;
        plan.weight_partial_report = 0.3;
        plan.reconnect_latency = util::msec(
            int_in(cfg, "fleet.fault.reconnect_ms", 50, 0, 60000));
        if (fault_reader >= 0 &&
            static_cast<std::size_t>(fault_reader) == r &&
            (fault_up_s <= 0.0 || fault_up_s > fault_down_s)) {
          llrp::OutageWindow outage;
          outage.from =
              util::msec(static_cast<std::int64_t>(fault_down_s * 1000.0));
          if (fault_up_s > 0.0) {
            outage.until =
                util::msec(static_cast<std::int64_t>(fault_up_s * 1000.0));
          }
          plan.outages.push_back(outage);
        }
        injectors.push_back(std::make_unique<llrp::FaultInjectingReaderClient>(
            *client, plan));
        client = injectors.back().get();
      }
      if (!record_path.empty()) {
        recorders.push_back(
            std::make_unique<llrp::RecordingReaderClient>(*client));
        client = recorders.back().get();
      }
    }
    specs.push_back({client, zone});
  }

  // -------------------------------------------------------------- fleet
  core::FleetConfig fcfg;
  fcfg.controller.mode = parse_mode(cfg.get_or("mode", "tagwatch"));
  fcfg.controller.greedy_evaluation =
      parse_evaluation(cfg.get_or("scheduler_evaluation", "lazy"));
  fcfg.controller.planner.incremental =
      cfg.get_bool_or("planner.incremental", false);
  fcfg.controller.planner.churn_threshold =
      double_in(cfg, "planner.churn_threshold", 0.15, 0.0, 1.0);
  fcfg.controller.planner.threads =
      static_cast<std::size_t>(int_in(cfg, "planner.threads", 1, 1, 64));
  fcfg.controller.force_scalar_simd =
      cfg.get_bool_or("simd.force_scalar", false);
  fcfg.controller.phase2_duration =
      util::sec(int_in(cfg, "phase2_seconds", 5, 1, 3600));
  fcfg.controller.pinned_targets = cfg.get_epc_list("pinned_targets");
  fcfg.controller.query_target = target;
  fcfg.controller.assessor.mobile_vote_threshold =
      static_cast<std::size_t>(int_in(cfg, "votes", 1, 1, 100));
  fcfg.controller.assessor.detector.phase_mog.max_components =
      static_cast<std::size_t>(int_in(cfg, "k", 8, 1, 64));
  fcfg.controller.assessor_threads =
      static_cast<std::size_t>(int_in(cfg, "assessor_threads", 1, 1, 64));
  fcfg.policy = policy;
  fcfg.shared_session = session;
  fcfg.dedup_window = dedup_window;
  fcfg.takeover = takeover;
  fcfg.resilience.suspect_after_failures =
      static_cast<std::size_t>(int_in(cfg, "fleet.suspect_after", 2, 1, 100));
  fcfg.resilience.down_after_failures =
      static_cast<std::size_t>(int_in(cfg, "fleet.down_after", 3, 1, 100));
  fcfg.resilience.probe_period =
      static_cast<std::size_t>(int_in(cfg, "fleet.probe_period", 2, 1, 100));
  fcfg.resilience.probation_cycles =
      static_cast<std::size_t>(int_in(cfg, "fleet.probation", 2, 1, 100));
  fcfg.resilience.recover_queue_capacity = static_cast<std::size_t>(
      int_in(cfg, "fleet.recover_capacity", 1024, 1, 1000000));
  // Replay has no world to sync the zone ledger against; the EPC-map
  // fallback produces identical handoffs.
  core::FleetController fleet(fcfg, specs,
                              replay_path.empty() ? &world : nullptr);

  // The fleet pipeline has no sinks until the application hangs one on it;
  // a counting sink gives the stats table its per-reader source rows.
  const bool pipeline_stats = cfg.get_bool_or("pipeline_stats", false);
  if (pipeline_stats) {
    fleet.pipeline().add_sink(std::make_shared<core::CallbackSink>(
        "app", [](const rf::TagReading&) {}));
  }

  std::printf("\nfleet: %zu readers, policy %s, session %s, target %s, "
              "dedup %.0f ms\n",
              n_readers, core::to_string(policy), gen2::to_string(session),
              target == gen2::InvFlag::kA ? "A" : "B",
              util::to_millis(dedup_window));
  std::printf("\n%5s  %9s  %10s  %11s  %7s  %9s\n", "cycle", "readings",
              "delivered", "duplicates", "dup %", "handoffs");
  std::vector<core::FleetCycleReport> reports;
  for (std::size_t c = 0; c < cycles; ++c) {
    reports.push_back(fleet.run_cycle());
    const core::FleetCycleReport& r = reports.back();
    std::printf("%5zu  %9zu  %10zu  %11zu  %6.2f%%  %9zu\n", r.cycle_index,
                r.readings_total, r.delivered_total, r.duplicates_total,
                r.cross_reader_dup_ratio() * 100.0, r.handoffs.size());
  }

  // --------------------------------------------------------- reporting
  std::printf("\n%-10s  %-10s  %10s  %11s  %-9s  %7s  %6s  %6s\n", "reader",
              "zone", "delivered", "duplicates", "state", "skipped", "probes",
              "faults");
  for (std::size_t r = 0; r < n_readers; ++r) {
    std::size_t delivered = 0;
    std::size_t duplicates = 0;
    std::size_t skipped = 0;
    std::size_t probes = 0;
    for (const core::FleetCycleReport& report : reports) {
      delivered += report.readers[r].delivered;
      duplicates += report.readers[r].duplicates;
      skipped += report.readers[r].skipped ? 1u : 0u;
      probes += report.readers[r].probe ? 1u : 0u;
    }
    const core::FleetReaderCycle& last = reports.back().readers[r];
    std::printf("reader %-3zu  %-10s  %10zu  %11zu  %-9s  %7zu  %6zu  %6llu\n",
                r, specs[r].zone.name.c_str(), delivered, duplicates,
                core::to_string(last.state), skipped, probes,
                static_cast<unsigned long long>(last.health.faults_total()));
  }

  std::size_t downs_total = 0;
  std::size_t takeovers_total = 0;
  std::size_t recoveries_total = 0;
  for (const core::FleetCycleReport& report : reports) {
    downs_total += report.downs.size();
    takeovers_total += report.takeovers.size();
    recoveries_total += report.recoveries.size();
  }
  if (downs_total + takeovers_total + recoveries_total > 0 ||
      inject_faults) {
    const core::RecoverStats rs = fleet.recover_stats();
    std::printf(
        "\nfleet health: %zu down events, %zu takeovers, %zu recoveries; "
        "re-cover queue: %llu enqueued, %llu recovered, %llu dropped, "
        "%zu pending\n",
        downs_total, takeovers_total, recoveries_total,
        static_cast<unsigned long long>(rs.enqueued),
        static_cast<unsigned long long>(rs.recovered),
        static_cast<unsigned long long>(rs.dropped), rs.pending);
    for (const core::FleetCycleReport& report : reports) {
      for (const llrp::FleetDownRecord& d : report.downs) {
        std::printf("  cycle %zu: reader %zu (%s) DOWN after %zu failures\n",
                    d.cycle, d.reader, d.zone.c_str(),
                    d.consecutive_failures);
      }
      for (const llrp::FleetTakeoverRecord& t : report.takeovers) {
        std::printf("  cycle %zu: reader %zu covers for %zu (radius %.3f m)\n",
                    t.cycle, t.to_reader, t.from_reader,
                    static_cast<double>(t.radius_mm) / 1000.0);
      }
      for (const llrp::FleetRecoverRecord& rec : report.recoveries) {
        std::printf("  cycle %zu: reader %zu RECOVERED after %zu cycles\n",
                    rec.cycle, rec.reader, rec.down_for_cycles);
      }
    }
  }

  std::size_t handoffs_total = 0;
  for (const core::FleetCycleReport& report : reports) {
    handoffs_total += report.handoffs.size();
  }
  if (handoffs_total > 0) {
    std::printf("\n%zu zone handoffs (first 10):\n", handoffs_total);
    std::size_t shown = 0;
    for (const core::FleetCycleReport& report : reports) {
      for (const llrp::FleetHandoffRecord& h : report.handoffs) {
        if (shown++ >= 10) break;
        std::printf("  %-26s  reader %zu -> %zu at %.3f s\n",
                    h.epc.to_hex().substr(0, 24).c_str(), h.from_reader,
                    h.to_reader, util::to_seconds(h.at));
      }
    }
  }

  if (pipeline_stats) {
    std::printf("\n%-10s  %7s  %10s  %8s  %12s\n", "sink", "source",
                "delivered", "dropped", "mean us/read");
    for (const core::SinkStats& s : fleet.pipeline().stats()) {
      std::printf("%-10s  %7zu  %10llu  %8llu  %12.3f\n", s.name.c_str(),
                  s.source_id, static_cast<unsigned long long>(s.delivered),
                  static_cast<unsigned long long>(s.dropped),
                  s.mean_dispatch_us());
    }
  }

  std::printf("\nfleet journal: %zu records, digest %016llx\n",
              fleet.journal().size(),
              static_cast<unsigned long long>(
                  llrp::fleet_journal_digest(fleet.journal())));
  if (!record_path.empty() && replay_path.empty()) {
    for (std::size_t r = 0; r < recorders.size(); ++r) {
      const std::string path =
          record_path + ".reader" + std::to_string(r) + ".csv";
      recorders[r]->journal().save(path);
      std::printf("recorded reader %zu: %zu operations to %s (digest "
                  "%016llx)\n",
                  r, recorders[r]->journal().size(), path.c_str(),
                  static_cast<unsigned long long>(
                      llrp::journal_digest(recorders[r]->journal())));
    }
    fleet.journal().save(record_path + ".fleet.csv");
    std::printf("recorded fleet journal to %s.fleet.csv\n",
                record_path.c_str());
  }
  return 0;
}

}  // namespace

int run(int argc, char** argv);

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tagwatch_sim: %s\n", e.what());
    return 1;
  }
}

int run(int argc, char** argv) {
  util::KeyValueConfig cfg;
  if (argc > 1) {
    cfg = util::KeyValueConfig::load(argv[1]);
    std::printf("scenario: %s\n", argv[1]);
  } else {
    std::printf("scenario: built-in defaults (pass a .conf path to change)\n");
  }

  reject_unknown_keys(cfg);

  if (int_in(cfg, "fleet.readers", 1, 1, 16) >= 2) {
    return run_fleet(cfg);
  }

  const auto n_tags =
      static_cast<std::size_t>(int_in(cfg, "tags", 40, 1, 100000));
  const auto n_movers = static_cast<std::size_t>(
      int_in(cfg, "movers", 2, 0, static_cast<std::int64_t>(n_tags)));
  const double mover_speed = double_in(cfg, "mover_speed", 0.7, 0.0, 100.0);
  const auto n_people =
      static_cast<std::size_t>(int_in(cfg, "people", 0, 0, 1000));
  const core::ScheduleMode mode = parse_mode(cfg.get_or("mode", "tagwatch"));
  const auto cycles =
      static_cast<std::size_t>(int_in(cfg, "cycles", 10, 1, 1000000));
  const auto seed = static_cast<std::uint64_t>(int_in(
      cfg, "seed", 2017, 0, std::numeric_limits<std::int64_t>::max()));
  const std::int64_t channels = int_in(cfg, "channels", 1, 1, 16);
  if (channels != 1 && channels != 16) {
    throw std::invalid_argument("scenario key 'channels' = " +
                                std::to_string(channels) +
                                " unsupported; accepted: 1 or 16");
  }
  const bool sixteen_channels = channels == 16;
  const auto irr_top =
      static_cast<std::size_t>(int_in(cfg, "irr_top", 10, 0, 100000));

  // ------------------------------------------------------------- world
  sim::World world;
  util::Rng rng(seed);
  std::vector<util::Epc> movers;
  for (std::size_t i = 0; i < n_tags; ++i) {
    sim::SimTag tag;
    tag.epc = util::Epc::random(rng);
    if (i < n_movers) {
      tag.motion = std::make_shared<sim::CircularTrack>(
          util::Vec3{0.5, 0.5, 0.0}, 0.2, mover_speed,
          rng.uniform(0.0, util::kTwoPi));
      movers.push_back(tag.epc);
    } else {
      tag.motion = std::make_shared<sim::StaticMotion>(
          util::Vec3{rng.uniform(-3, 3), rng.uniform(-3, 3), 0.0});
    }
    tag.tag_phase_rad = rng.uniform(0.0, util::kTwoPi);
    world.add_tag(std::move(tag));
  }
  util::Rng walk_rng = rng.fork();
  const auto horizon = util::sec(static_cast<std::int64_t>(cycles) * 10);
  for (std::size_t p = 0; p < n_people; ++p) {
    world.add_reflector({std::make_shared<sim::RandomWaypoint>(
                             util::Vec3{-4, -4, 0}, util::Vec3{4, 4, 0}, 1.0,
                             horizon, walk_rng, util::sec(2)),
                         0.3});
  }

  // ------------------------------------------------------------ reader
  rf::RfChannel channel(sixteen_channels
                            ? rf::ChannelPlan::china_920_926()
                            : rf::ChannelPlan::single(920.625e6));
  std::vector<rf::Antenna> antennas{{1, {-5, -5, 0}, 8.0},
                                    {2, {5, -5, 0}, 8.0},
                                    {3, {-5, 5, 0}, 8.0},
                                    {4, {5, 5, 0}, 8.0}};
  llrp::SimReaderClient sim_client(
      gen2::LinkTiming(gen2::LinkParams::paper_testbed()),
      gen2::ReaderConfig{}, world, channel, antennas, seed + 1);

  // Transport selection: simulate, simulate-and-record, or replay a trace.
  // The controller only ever sees the abstract interface.  With
  // fault_injection the stack is sim -> injector -> recorder, so the
  // journal captures the faults and a replay reproduces them bit-exactly
  // (a replayed trace already contains its faults — no injector then).
  const std::string record_path = cfg.get_or("record_journal", "");
  const std::string replay_path = cfg.get_or("replay_journal", "");
  const bool inject_faults = cfg.get_bool_or("fault_injection", false);
  std::unique_ptr<llrp::FaultInjectingReaderClient> injector;
  std::unique_ptr<llrp::RecordingReaderClient> recorder;
  std::unique_ptr<llrp::ReplayReaderClient> replayer;
  llrp::ReaderClient* client = &sim_client;
  if (!replay_path.empty()) {
    llrp::ReaderJournal journal = llrp::ReaderJournal::load(replay_path);
    const std::uint64_t digest = llrp::journal_digest(journal);
    replayer = std::make_unique<llrp::ReplayReaderClient>(std::move(journal));
    client = replayer.get();
    std::printf(
        "replaying journal: %s (%zu operations, backend %s, digest "
        "%016llx)\n",
        replay_path.c_str(), replayer->remaining(),
        replayer->capabilities().model.c_str(),
        static_cast<unsigned long long>(digest));
  } else {
    if (inject_faults) {
      llrp::FaultPlan plan;
      plan.seed = static_cast<std::uint64_t>(
          int_in(cfg, "fault_seed", 99, 0,
                 std::numeric_limits<std::int64_t>::max()));
      plan.execute_failure_probability =
          double_in(cfg, "fault_rate", 0.1, 0.0, 1.0);
      plan.weight_disconnect = 0.3;
      plan.weight_partial_report = 0.3;
      plan.reading_drop_rate = double_in(cfg, "fault_drop_rate", 0.0, 0.0, 1.0);
      plan.reading_duplicate_rate =
          double_in(cfg, "fault_duplicate_rate", 0.0, 0.0, 1.0);
      plan.phase_corruption_rate =
          double_in(cfg, "fault_corrupt_rate", 0.0, 0.0, 1.0);
      plan.reconnect_latency =
          util::msec(int_in(cfg, "fault_reconnect_ms", 50, 0, 60000));
      injector = std::make_unique<llrp::FaultInjectingReaderClient>(sim_client,
                                                                    plan);
      client = injector.get();
    }
    if (!record_path.empty()) {
      recorder = std::make_unique<llrp::RecordingReaderClient>(*client);
      client = recorder.get();
    }
  }

  // ---------------------------------------------------------- tagwatch
  core::TagwatchConfig twcfg;
  twcfg.mode = mode;
  twcfg.greedy_evaluation =
      parse_evaluation(cfg.get_or("scheduler_evaluation", "lazy"));
  twcfg.planner.incremental = cfg.get_bool_or("planner.incremental", false);
  twcfg.planner.churn_threshold =
      double_in(cfg, "planner.churn_threshold", 0.15, 0.0, 1.0);
  twcfg.planner.threads =
      static_cast<std::size_t>(int_in(cfg, "planner.threads", 1, 1, 64));
  twcfg.force_scalar_simd = cfg.get_bool_or("simd.force_scalar", false);
  twcfg.phase2_duration =
      util::sec(int_in(cfg, "phase2_seconds", 5, 1, 3600));
  twcfg.pinned_targets = cfg.get_epc_list("pinned_targets");
  twcfg.assessor.mobile_vote_threshold =
      static_cast<std::size_t>(int_in(cfg, "votes", 1, 1, 100));
  twcfg.assessor.detector.phase_mog.max_components =
      static_cast<std::size_t>(int_in(cfg, "k", 8, 1, 64));
  // Any value is bit-identical to 1 (the differential tests enforce it);
  // raising it only buys ingestion throughput on large scenes.
  twcfg.assessor_threads =
      static_cast<std::size_t>(int_in(cfg, "assessor_threads", 1, 1, 64));
  twcfg.resilience.retry.max_attempts =
      static_cast<std::size_t>(int_in(cfg, "retry_attempts", 3, 1, 10));
  twcfg.resilience.degrade_after_failures =
      static_cast<std::size_t>(int_in(cfg, "degrade_after", 3, 1, 100));
  twcfg.resilience.restore_after_healthy =
      static_cast<std::size_t>(int_in(cfg, "restore_after", 3, 1, 100));
  core::TagwatchController ctl(twcfg, *client);

  core::IrrMonitor monitor(twcfg.phase2_duration);
  ctl.set_read_listener(
      [&monitor](const rf::TagReading& r) { monitor.record(r); });
  const std::shared_ptr<core::PipelineMetrics> metrics =
      core::attach_metrics(ctl);

  std::printf("\n%5s  %-10s  %7s  %7s  %9s  %12s  %10s  %5s  %7s\n", "cycle",
              "mode", "scene", "targets", "bitmasks", "phase2 reads",
              "gap (ms)", "fails", "retries");
  core::CycleReport last_report;
  for (std::size_t c = 0; c < cycles; ++c) {
    const core::CycleReport r = ctl.run_cycle();
    const std::string gap =
        r.interphase_gap
            ? util::format_fixed(util::to_millis(*r.interphase_gap), 1)
            : std::string("-");
    const char* mode_label = r.degraded_mode     ? "degraded"
                             : r.read_all_fallback ? "read-all"
                                                   : "selective";
    std::printf("%5zu  %-10s  %7zu  %7zu  %9zu  %12zu  %10s  %5zu  %7zu\n",
                r.cycle_index, mode_label, r.scene.size(), r.targets.size(),
                r.schedule.selections.size(), r.phase2_readings, gap.c_str(),
                r.execute_failures, r.retries);
    last_report = r;
  }

  // --------------------------------------------------------- reporting
  const util::SimTime now = client->now();
  std::printf("\ntop per-tag IRRs over the last %2.0f s window:\n",
              util::to_seconds(monitor.window()));
  std::printf("%-26s  %8s  %s\n", "EPC", "IRR(Hz)", "role");
  std::size_t shown = 0;
  for (const auto& [epc, irr] : monitor.snapshot(now)) {
    if (shown++ >= irr_top) break;
    const bool mover =
        std::find(movers.begin(), movers.end(), epc) != movers.end();
    std::printf("%-26s  %8.2f  %s\n", (epc.to_hex().substr(0, 24)).c_str(),
                irr, mover ? "mobile" : "static");
  }

  if (cfg.get_bool_or("pipeline_stats", false)) {
    const core::PipelineMetricsSnapshot snap = metrics->snapshot();
    std::printf("\npipeline: %llu readings over %llu cycles "
                "(%llu read-all), %zu slots (%zu empty, %zu collided)\n",
                static_cast<unsigned long long>(snap.readings_total()),
                static_cast<unsigned long long>(snap.cycles),
                static_cast<unsigned long long>(snap.read_all_cycles),
                snap.slot_totals.slots, snap.slot_totals.empty_slots,
                snap.slot_totals.collision_slots);
    std::printf("%-10s  %10s  %8s  %12s\n", "sink", "delivered", "dropped",
                "mean us/read");
    for (const auto& sink : snap.sinks) {
      std::printf("%-10s  %10llu  %8llu  %12.3f\n", sink.name.c_str(),
                  static_cast<unsigned long long>(sink.delivered),
                  static_cast<unsigned long long>(sink.dropped),
                  sink.mean_dispatch_us());
    }
  }

  if (inject_faults || ctl.health().faults_total() > 0) {
    const core::HealthMetrics& h = ctl.health();
    std::printf(
        "\nreader health: %llu faults (%llu timeout, %llu disconnect, "
        "%llu protocol, %llu partial, %llu antenna-lost)\n",
        static_cast<unsigned long long>(h.faults_total()),
        static_cast<unsigned long long>(h.timeouts),
        static_cast<unsigned long long>(h.disconnects),
        static_cast<unsigned long long>(h.protocol_errors),
        static_cast<unsigned long long>(h.partial_reports),
        static_cast<unsigned long long>(h.antenna_losses));
    std::printf(
        "  %llu retries, %llu giveups, %.1f ms in backoff, "
        "%llu readings salvaged from %llu partial reports\n",
        static_cast<unsigned long long>(h.retries),
        static_cast<unsigned long long>(h.giveups),
        util::to_millis(h.backoff_total),
        static_cast<unsigned long long>(h.salvaged_readings),
        static_cast<unsigned long long>(h.partial_salvages));
    std::printf(
        "  degraded: %llu entries, %llu exits, %llu cycles spent degraded; "
        "%llu watchdog trips; %zu antennas quarantined\n",
        static_cast<unsigned long long>(h.degraded_entries),
        static_cast<unsigned long long>(h.degraded_exits),
        static_cast<unsigned long long>(h.degraded_cycles),
        static_cast<unsigned long long>(h.watchdog_trips),
        ctl.quarantined_antennas().size());
    if (injector != nullptr) {
      const llrp::InjectionStats& s = injector->stats();
      std::printf(
          "  injected: %llu/%llu executes faulted; readings: %llu dropped, "
          "%llu duplicated, %llu phase-corrupted\n",
          static_cast<unsigned long long>(s.injected_faults_total()),
          static_cast<unsigned long long>(s.executes),
          static_cast<unsigned long long>(s.dropped_readings),
          static_cast<unsigned long long>(s.duplicated_readings),
          static_cast<unsigned long long>(s.corrupted_readings));
    }
  }

  if (cfg.get_bool_or("export_schedule", false) &&
      !last_report.schedule.selections.empty()) {
    std::printf("\nlast Phase II schedule as ROSpec XML:\n%s",
                core::schedule_to_xml(last_report.schedule).c_str());
  }

  if (recorder != nullptr) {
    recorder->journal().save(record_path);
    std::printf("\nrecorded %zu reader operations to %s (digest %016llx)\n",
                recorder->journal().size(), record_path.c_str(),
                static_cast<unsigned long long>(
                    llrp::journal_digest(recorder->journal())));
  }
  return 0;
}
